#include "core/support_counting.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/cpu_dispatch.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/count_kernels.h"
#include "index/hash_tree.h"
#include "index/ndim_array.h"
#include "index/rstar_tree.h"

namespace qarm {
namespace {

struct SuperCandidate {
  std::vector<int32_t> cat_item_ids;  // sorted item ids (categorical part)
  std::vector<int32_t> quant_attrs;   // sorted attribute indices
  std::vector<uint32_t> members;      // candidate indices
  std::unique_ptr<NDimArray> array;
  std::unique_ptr<RStarTree> tree;
  // Parallel to members; used by both the tree mode and the degraded
  // direct-scan mode below.
  std::vector<uint32_t> tree_counts;
  uint64_t direct_count = 0;          // purely categorical
  // Degraded mode (counter budget exhausted): no counting structure at
  // all — each record is tested against every member's rectangle, stored
  // flat here as lo/hi pairs per dimension.
  bool degraded_scan = false;
  std::vector<int32_t> member_rects;
  // Parallel scan: grid shared across workers, updated atomically (its
  // per-thread replicas would not fit the replication budget).
  bool atomic_shared = false;
  // Counted by the block-kernel path (SIMD compare masks over whole column
  // slices) instead of the row-at-a-time hash-tree probe.
  bool kernel = false;
  // Grid strides as int32, for the vectorized flat-index computation; only
  // filled for kernel array groups (gated on FlatIndexFitsInt32).
  std::vector<int32_t> grid_strides;
};

// Thread-local accumulators of one scan worker. Worker 0 writes directly
// into the groups' own structures; workers 1..T-1 fill these and are
// reduced in afterwards, so the final counts are identical to a serial
// scan (integer addition is order-independent).
struct WorkerCounters {
  std::vector<std::unique_ptr<NDimArray>> arrays;   // per group, or null
  std::vector<std::vector<uint32_t>> tree_counts;   // per group
  std::vector<uint64_t> direct;                     // per group
  HashTree::SubsetScratch scratch;
};

// Per-worker scratch of the block-kernel scan path: row masks sized to the
// largest block, the vectorized flat-index buffer, and (for row-major
// sources) the slab the needed columns are materialized into.
struct KernelScratch {
  std::vector<uint64_t> base_mask;
  std::vector<uint64_t> tmp_mask;
  std::vector<int32_t> flat_idx;
  std::vector<int32_t> columns;           // kernel_attrs.size() * max_rows
  std::vector<const int32_t*> col_ptr;    // per attribute, null if unused
};

// Cat-bearing super-candidates run the block kernels only while the group
// count is modest: every kernel group touches each block, so with G groups
// the kernel path is O(G * rows) compares, whereas the hash tree prunes to
// the groups a record can match. Boolean-heavy workloads (thousands of
// purely categorical groups) therefore stay on the probe path; quantitative
// passes (few groups, wide rectangles) vectorize. Pure-quant groups match
// every record, so the tree never prunes them and they always kernel.
constexpr size_t kMaxKernelCatGroups = 512;

}  // namespace

size_t GroupKeyHash::operator()(const std::vector<int32_t>& v) const {
  // The shared FNV-1a+splitmix64 of common/hash.h; the finalizer matters
  // here because short keys of small integers (attr indices, item ids)
  // collide structurally under an unordered_map's bucket mask otherwise.
  return static_cast<size_t>(HashInt32Words(v.data(), v.size()));
}

std::vector<uint32_t> CountSupports(const MappedTable& table,
                                    const ItemCatalog& catalog,
                                    const ItemsetSet& candidates,
                                    const MinerOptions& options,
                                    CountingStats* stats) {
  const MappedTableSource source(
      table, PickBlockRows(table.num_rows(),
                           ResolveNumThreads(options.num_threads),
                           options.stream_block_rows));
  Result<std::vector<uint32_t>> counts =
      CountSupports(source, catalog, candidates, options, stats);
  QARM_CHECK(counts.ok());  // in-memory block reads cannot fail
  return std::move(counts).value();
}

Result<std::vector<uint32_t>> CountSupports(const RecordSource& source,
                                            const ItemCatalog& catalog,
                                            const ItemsetSet& candidates,
                                            const MinerOptions& options,
                                            CountingStats* stats) {
  return CountSupports(source, catalog, ItemsetStreamView(candidates),
                       options, stats);
}

Result<std::vector<uint32_t>> CountSupports(const RecordSource& source,
                                            const ItemCatalog& catalog,
                                            const CandidateStream& candidates,
                                            const MinerOptions& options,
                                            CountingStats* stats) {
  const size_t num_candidates = candidates.size();
  const size_t k = candidates.k();
  std::vector<uint32_t> counts(num_candidates, 0);
  if (num_candidates == 0) return counts;

  CountingStats local_stats;
  Timer phase_timer;
  const ScanIoStats io_before = source.io_stats();

  // "Ranged" attributes (quantitative, or categorical under a taxonomy)
  // become dimensions of the super-candidate rectangles; plain categorical
  // items are matched through the hash tree.
  auto is_ranged = [&source](int32_t attr) {
    return source.attribute(static_cast<size_t>(attr)).ranged();
  };

  // --- Group candidates into super-candidates. ---
  // Key: [quantitative attrs..., -1, categorical item ids...]. Categorical
  // items pin both attribute and value, exactly the paper's grouping.
  // The chunked sweep visits candidates in their exact serial generation
  // order, so group creation order and member order — and therefore every
  // downstream count — are identical whether the stream is materialized or
  // implicit.
  std::unordered_map<std::vector<int32_t>, size_t, GroupKeyHash> group_index;
  std::vector<SuperCandidate> groups;
  std::vector<int32_t> key;
  candidates.ForEachChunk([&](size_t first, const ItemsetSet& chunk) {
    for (size_t i = 0; i < chunk.size(); ++i) {
      const int32_t* ids = chunk.itemset(i);
      const size_t c = first + i;
      key.clear();
      for (size_t p = 0; p < k; ++p) {
        const RangeItem& item = catalog.item(ids[p]);
        if (is_ranged(item.attr)) key.push_back(item.attr);
      }
      key.push_back(-1);
      for (size_t p = 0; p < k; ++p) {
        const RangeItem& item = catalog.item(ids[p]);
        if (!is_ranged(item.attr)) key.push_back(ids[p]);
      }
      auto [it, inserted] = group_index.emplace(key, groups.size());
      if (inserted) {
        SuperCandidate sc;
        size_t sep = 0;
        while (key[sep] != -1) ++sep;
        sc.quant_attrs.assign(key.begin(), key.begin() + sep);
        sc.cat_item_ids.assign(key.begin() + sep + 1, key.end());
        groups.push_back(std::move(sc));
      }
      groups[it->second].members.push_back(static_cast<uint32_t>(c));
    }
  });
  local_stats.num_super_candidates = groups.size();
  local_stats.group_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // The scan parallelism: never more shards than blocks (in-memory sources
  // pick their block size so that small tables still feed every worker).
  const size_t threads_used =
      std::max<size_t>(1, std::min(ResolveNumThreads(options.num_threads),
                                   source.num_blocks()));
  local_stats.threads_used = threads_used;

  // --- Build a counting structure per super-candidate. ---
  // Dense grids are budgeted cumulatively: `array_bytes_total` tracks every
  // grid of this pass against counter_memory_budget_bytes, so total counter
  // memory stays bounded no matter how many super-candidates a pass has.
  uint64_t array_bytes_total = 0;
  uint64_t tree_bytes_total = 0;
  uint64_t replicated_bytes_total = 0;
  for (SuperCandidate& sc : groups) {
    if (sc.quant_attrs.empty()) {
      QARM_CHECK_EQ(sc.members.size(), 1u);  // identical itemsets are unique
      ++local_stats.num_direct;
      continue;
    }
    QARM_CHECK_LE(sc.quant_attrs.size(), kRStarMaxDims);
    std::vector<int32_t> dim_sizes;
    dim_sizes.reserve(sc.quant_attrs.size());
    for (int32_t attr : sc.quant_attrs) {
      dim_sizes.push_back(static_cast<int32_t>(
          source.attribute(static_cast<size_t>(attr)).domain_size()));
    }
    const uint64_t array_bytes = NDimArray::EstimateBytes(dim_sizes);
    const uint64_t tree_bytes =
        RStarTree::EstimateBytes(sc.members.size(), dim_sizes.size());
    const bool fits_budget =
        array_bytes <= options.counter_memory_budget_bytes &&
        array_bytes_total <=
            options.counter_memory_budget_bytes - array_bytes;
    const bool use_array = fits_budget || array_bytes <= tree_bytes;
    if (use_array) {
      sc.array = std::make_unique<NDimArray>(dim_sizes);
      array_bytes_total += array_bytes;
      local_stats.counter_bytes += array_bytes;
      ++local_stats.num_array_counters;
      if (threads_used > 1) {
        // Replicate the grid per extra worker if the replicas fit the
        // (cumulative) replication budget; otherwise share it and count
        // with atomic increments.
        const uint64_t extra_workers = threads_used - 1;
        const bool replicas_fit =
            array_bytes <=
                options.parallel_replication_budget_bytes / extra_workers &&
            replicated_bytes_total <=
                options.parallel_replication_budget_bytes -
                    array_bytes * extra_workers;
        if (replicas_fit) {
          replicated_bytes_total += array_bytes * extra_workers;
        } else {
          sc.atomic_shared = true;
          ++local_stats.num_atomic_shared;
        }
      }
    } else {
      // Trees are budgeted cumulatively too, as a high-water mark: a tree
      // is admitted while the running tree total is still within budget
      // (so a pass always gets at least one), and once the total crosses
      // it the remaining super-candidates degrade to a structure-free
      // linear scan of their member rectangles — much slower per record
      // but near-zero memory, so the pass always completes.
      const bool tree_fits =
          tree_bytes_total <= options.counter_memory_budget_bytes;
      sc.tree_counts.assign(sc.members.size(), 0);
      if (tree_fits) {
        sc.tree = std::make_unique<RStarTree>(sc.quant_attrs.size());
      } else {
        sc.degraded_scan = true;
        sc.member_rects.reserve(sc.members.size() * dim_sizes.size() * 2);
        ++local_stats.num_degraded;
      }
      std::vector<int32_t> ids(k);
      for (size_t m = 0; m < sc.members.size(); ++m) {
        candidates.Get(sc.members[m], ids.data());
        RStarRect rect;
        size_t d = 0;
        for (size_t i = 0; i < k; ++i) {
          const RangeItem& item = catalog.item(ids[i]);
          if (!is_ranged(item.attr)) continue;
          if (sc.degraded_scan) {
            sc.member_rects.push_back(item.lo);
            sc.member_rects.push_back(item.hi);
          } else {
            rect.lo[d] = static_cast<double>(item.lo);
            rect.hi[d] = static_cast<double>(item.hi);
          }
          ++d;
        }
        if (!sc.degraded_scan) {
          sc.tree->Insert(rect, static_cast<int32_t>(m));
        }
      }
      if (tree_fits) {
        tree_bytes_total += tree_bytes;
        local_stats.counter_bytes += tree_bytes;
        ++local_stats.num_tree_counters;
      }
    }
  }
  local_stats.replicated_bytes = replicated_bytes_total;
  if (local_stats.num_degraded > 0) {
    QARM_LOG(Warning) << "counter memory budget ("
                      << options.counter_memory_budget_bytes
                      << " bytes) exhausted: " << local_stats.num_degraded
                      << " of " << groups.size()
                      << " super-candidates degrade to direct-scan "
                         "counting this pass";
  }

  // --- Kernel plan: block-kernel path vs row-at-a-time hash-tree path. ---
  // Under the scalar ISA every group takes the original row-at-a-time path,
  // which doubles as the oracle the vector ISAs are tested against.
  const CountKernels& kern = CountKernels::Active();
  local_stats.isa = kern.isa;
  std::vector<int32_t> kernel_group_ids;
  std::vector<size_t> kernel_attrs;  // sorted unique attrs the kernels read
  for (size_t g = 0; g < groups.size(); ++g) {
    SuperCandidate& sc = groups[g];
    if (kern.isa == SimdIsa::kScalar) continue;
    if (!sc.cat_item_ids.empty() && groups.size() > kMaxKernelCatGroups) {
      continue;
    }
    // The vectorized flat-index scatter needs int32 indices; grids beyond
    // 2^31 cells (8 GiB+, far past any counter budget) stay on the row
    // path rather than carrying a 64-bit kernel variant.
    if (sc.array != nullptr && !sc.array->FlatIndexFitsInt32()) continue;
    sc.kernel = true;
    kernel_group_ids.push_back(static_cast<int32_t>(g));
    if (sc.array != nullptr) {
      sc.grid_strides.reserve(sc.array->strides().size());
      for (uint64_t s : sc.array->strides()) {
        sc.grid_strides.push_back(static_cast<int32_t>(s));
      }
    }
    for (int32_t id : sc.cat_item_ids) {
      kernel_attrs.push_back(static_cast<size_t>(catalog.item(id).attr));
    }
    for (int32_t attr : sc.quant_attrs) {
      kernel_attrs.push_back(static_cast<size_t>(attr));
    }
  }
  std::sort(kernel_attrs.begin(), kernel_attrs.end());
  kernel_attrs.erase(std::unique(kernel_attrs.begin(), kernel_attrs.end()),
                     kernel_attrs.end());
  local_stats.num_kernel_groups = kernel_group_ids.size();
  local_stats.num_hash_groups = groups.size() - kernel_group_ids.size();

  // --- Hash tree over the categorical parts of the non-kernel groups. ---
  // Built and frozen once here; the scan only probes it (ForEachSubset with
  // per-worker scratch), which is mutation-free and safe to run
  // concurrently. When every group kernels, the tree (and the whole
  // row-at-a-time loop) is skipped.
  const bool any_hash_groups = local_stats.num_hash_groups > 0;
  HashTree hash_tree(/*leaf_capacity=*/16, /*fanout=*/64);
  if (any_hash_groups) {
    for (size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].kernel) continue;
      hash_tree.Insert(groups[g].cat_item_ids, static_cast<int32_t>(g));
    }
    hash_tree.Freeze();
  }
  local_stats.build_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // The scan's per-row point buffers below are kRStarMaxDims wide; the
  // per-group check in the build loop bounds each group, but guard the
  // whole pass explicitly before any buffer is indexed.
  size_t max_dims = 0;
  for (const SuperCandidate& sc : groups) {
    max_dims = std::max(max_dims, sc.quant_attrs.size());
  }
  QARM_CHECK_LE(max_dims, kRStarMaxDims);

  // Satellite of the kernel path: the per-row transaction build only ever
  // looks at plain categorical attributes, so resolve that set once per
  // pass instead of re-testing attribute kinds on every row.
  const size_t num_attrs = source.num_attributes();
  std::vector<size_t> plain_cat_attrs;
  for (size_t a = 0; a < num_attrs; ++a) {
    const MappedAttribute& attr = source.attribute(a);
    if (attr.kind == AttributeKind::kCategorical && !attr.ranged()) {
      plain_cat_attrs.push_back(a);
    }
  }

  const size_t max_block_rows =
      kernel_group_ids.empty() ? 0 : source.max_block_rows();

  // --- The pass over the database, sharded across workers. ---
  // Each worker streams a contiguous *block* range through its own
  // BlockView, so memory stays bounded by the blocks in flight no matter
  // how large the source is. `local == nullptr` means the worker owns the
  // groups' primary structures (worker 0, and the whole serial path);
  // otherwise increments go to the worker's own replicas. Grids flagged
  // atomic_shared are written by every worker via relaxed atomic adds.
  //
  // Kernel groups are counted per *block*: one bitmask over the block's
  // rows per group — vectorized equality compares for the categorical
  // items, missing-value compares per dimension — then the mode-specific
  // finish (popcount, flat-index scatter, tree probe of surviving rows, or
  // per-member range masks). Hash groups run the original row-at-a-time
  // probe over the same block afterwards.
  auto scan_blocks = [&](size_t block_begin, size_t block_end,
                         WorkerCounters* local,
                         HashTree::SubsetScratch* scratch) -> Status {
    std::vector<int32_t> cat_transaction;
    cat_transaction.reserve(num_attrs);
    int32_t point[kRStarMaxDims];
    double dpoint[kRStarMaxDims];
    BlockView view;

    KernelScratch ks;
    if (!kernel_group_ids.empty()) {
      ks.base_mask.resize(MaskWords(max_block_rows));
      ks.tmp_mask.resize(MaskWords(max_block_rows));
      ks.flat_idx.resize(max_block_rows);
      ks.col_ptr.assign(num_attrs, nullptr);
    }

    // One kernel group over one block of n rows.
    auto scan_kernel_group = [&](int32_t g, size_t n) {
      SuperCandidate& sc = groups[static_cast<size_t>(g)];
      const size_t dims = sc.quant_attrs.size();
      uint64_t* mask = ks.base_mask.data();
      kern.fill_ones(mask, n);
      for (int32_t id : sc.cat_item_ids) {
        const RangeItem& item = catalog.item(id);
        // A categorical item pins attr to one value; missing (-1) never
        // equals a mapped value (>= 0), so the compare also filters nulls.
        kern.mask_eq(mask, ks.col_ptr[static_cast<size_t>(item.attr)], n,
                     item.lo);
      }
      for (size_t d = 0; d < dims; ++d) {
        // A record lacking any dimension supports no member.
        kern.mask_neq(mask, ks.col_ptr[static_cast<size_t>(sc.quant_attrs[d])],
                      n, kMissingValue);
      }
      const uint64_t matches = kern.popcount(mask, n);
      if (dims == 0) {
        if (local != nullptr) {
          local->direct[static_cast<size_t>(g)] += matches;
        } else {
          sc.direct_count += matches;
        }
        return;
      }
      if (matches == 0) return;
      const size_t words = MaskWords(n);
      if (sc.array != nullptr) {
        const int32_t* cols[kRStarMaxDims];
        for (size_t d = 0; d < dims; ++d) {
          cols[d] = ks.col_ptr[static_cast<size_t>(sc.quant_attrs[d])];
        }
        kern.flat_index(ks.flat_idx.data(), cols, sc.grid_strides.data(),
                        dims, n);
        NDimArray* grid = sc.atomic_shared || local == nullptr
                              ? sc.array.get()
                              : local->arrays[static_cast<size_t>(g)].get();
        const int32_t* idx = ks.flat_idx.data();
        for (size_t w = 0; w < words; ++w) {
          uint64_t bits = mask[w];
          while (bits != 0) {
            const size_t r =
                w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const size_t cell = static_cast<size_t>(
                static_cast<uint32_t>(idx[r]));
            if (sc.atomic_shared) {
              grid->AtomicIncrementFlat(cell);
            } else {
              grid->IncrementFlat(cell);
            }
          }
        }
      } else if (sc.tree != nullptr) {
        std::vector<uint32_t>& tree_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        for (size_t w = 0; w < words; ++w) {
          uint64_t bits = mask[w];
          while (bits != 0) {
            const size_t r =
                w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            for (size_t d = 0; d < dims; ++d) {
              dpoint[d] = static_cast<double>(
                  ks.col_ptr[static_cast<size_t>(sc.quant_attrs[d])][r]);
            }
            sc.tree->ForEachContaining(dpoint, [&tree_counts](int32_t m) {
              ++tree_counts[static_cast<size_t>(m)];
            });
          }
        }
      } else {
        // Degraded mode, vectorized: per member, refine a copy of the base
        // mask with one range compare per dimension and popcount it.
        std::vector<uint32_t>& member_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        const int32_t* rects = sc.member_rects.data();
        uint64_t* tmp = ks.tmp_mask.data();
        for (size_t m = 0; m < sc.members.size(); ++m) {
          const int32_t* rect = rects + m * dims * 2;
          std::memcpy(tmp, mask, words * sizeof(uint64_t));
          for (size_t d = 0; d < dims; ++d) {
            kern.mask_range(tmp,
                            ks.col_ptr[static_cast<size_t>(sc.quant_attrs[d])],
                            n, rect[2 * d], rect[2 * d + 1]);
          }
          member_counts[m] += static_cast<uint32_t>(kern.popcount(tmp, n));
        }
      }
    };

    auto visit = [&](int32_t g, size_t r) {
      SuperCandidate& sc = groups[static_cast<size_t>(g)];
      const size_t dims = sc.quant_attrs.size();
      if (dims == 0) {
        if (local != nullptr) {
          ++local->direct[static_cast<size_t>(g)];
        } else {
          ++sc.direct_count;
        }
        return;
      }
      for (size_t d = 0; d < dims; ++d) {
        point[d] = view.value(r, static_cast<size_t>(sc.quant_attrs[d]));
        // A record lacking any of the dimensions supports no candidate in
        // this super-candidate.
        if (point[d] == kMissingValue) return;
      }
      if (sc.array != nullptr) {
        if (sc.atomic_shared) {
          sc.array->AtomicIncrement(point);
        } else if (local != nullptr) {
          local->arrays[static_cast<size_t>(g)]->Increment(point);
        } else {
          sc.array->Increment(point);
        }
      } else if (sc.tree != nullptr) {
        for (size_t d = 0; d < dims; ++d) {
          dpoint[d] = static_cast<double>(point[d]);
        }
        std::vector<uint32_t>& tree_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        sc.tree->ForEachContaining(dpoint, [&tree_counts](int32_t m) {
          ++tree_counts[static_cast<size_t>(m)];
        });
      } else {
        // Degraded mode: test the point against every member rectangle.
        std::vector<uint32_t>& member_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        const int32_t* rects = sc.member_rects.data();
        const size_t num_members = sc.members.size();
        for (size_t m = 0; m < num_members; ++m) {
          const int32_t* rect = rects + m * dims * 2;
          bool inside = true;
          for (size_t d = 0; d < dims; ++d) {
            if (point[d] < rect[2 * d] || point[d] > rect[2 * d + 1]) {
              inside = false;
              break;
            }
          }
          if (inside) ++member_counts[m];
        }
      }
    };

    for (size_t b = block_begin; b < block_end; ++b) {
      QARM_RETURN_NOT_OK(source.ReadBlock(b, &view));
      const size_t block_rows = view.num_rows();

      if (!kernel_group_ids.empty()) {
        // Resolve contiguous column slices: columnar blocks (QBT) are read
        // in place; row-major blocks materialize the needed attributes
        // into the worker's slab once per block.
        if (view.columnar()) {
          for (size_t a : kernel_attrs) ks.col_ptr[a] = view.column(a);
        } else {
          if (ks.columns.size() < kernel_attrs.size() * max_block_rows) {
            ks.columns.resize(kernel_attrs.size() * max_block_rows);
          }
          const size_t stride = view.stride();
          for (size_t i = 0; i < kernel_attrs.size(); ++i) {
            const size_t a = kernel_attrs[i];
            const int32_t* src = view.column(a);
            int32_t* dst = ks.columns.data() + i * max_block_rows;
            for (size_t r = 0; r < block_rows; ++r) {
              dst[r] = src[r * stride];
            }
            ks.col_ptr[a] = dst;
          }
        }
        for (int32_t g : kernel_group_ids) {
          scan_kernel_group(g, block_rows);
        }
      }

      if (!any_hash_groups) continue;
      for (size_t r = 0; r < block_rows; ++r) {
        cat_transaction.clear();
        for (size_t a : plain_cat_attrs) {
          const int32_t v = view.value(r, a);
          if (v == kMissingValue) continue;
          int32_t id = catalog.CategoricalItemId(a, v);
          if (id >= 0) cat_transaction.push_back(id);
        }
        auto on_group = [&](int32_t g) { visit(g, r); };
        if (scratch != nullptr) {
          hash_tree.ForEachSubset(cat_transaction, on_group, scratch);
        } else {
          hash_tree.ForEachSubset(cat_transaction, on_group);
        }
      }
    }
    return Status::OK();
  };

  // One pool serves both the scan and the reduce below.
  std::unique_ptr<ThreadPool> pool;
  if (threads_used > 1) pool = std::make_unique<ThreadPool>(threads_used);

  std::vector<WorkerCounters> workers;
  if (threads_used == 1) {
    QARM_RETURN_NOT_OK(scan_blocks(0, source.num_blocks(),
                                   /*local=*/nullptr, /*scratch=*/nullptr));
  } else {
    workers.resize(threads_used);
    const std::vector<IndexRange> shards =
        SplitRange(source.num_blocks(), threads_used);
    std::vector<Status> statuses(shards.size());
    pool->ParallelFor(shards.size(), [&](size_t w) {
      WorkerCounters& wc = workers[w];
      if (w > 0) {
        // Allocate the replicas on the worker itself (first-touch locality).
        wc.direct.assign(groups.size(), 0);
        wc.tree_counts.resize(groups.size());
        wc.arrays.resize(groups.size());
        for (size_t g = 0; g < groups.size(); ++g) {
          const SuperCandidate& sc = groups[g];
          if (sc.tree != nullptr || sc.degraded_scan) {
            wc.tree_counts[g].assign(sc.members.size(), 0);
          } else if (sc.array != nullptr && !sc.atomic_shared) {
            wc.arrays[g] = std::make_unique<NDimArray>(sc.array->dim_sizes());
          }
        }
      }
      statuses[w] = scan_blocks(shards[w].begin, shards[w].end,
                                w == 0 ? nullptr : &wc, &wc.scratch);
    });
    for (const Status& status : statuses) {
      QARM_RETURN_NOT_OK(status);
    }
  }
  local_stats.scan_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // --- Reduce worker shards and collect per-candidate counts. ---
  // One task per super-candidate: merge its worker shards (a pairwise tree
  // in fixed order — merging shards while both are cache-warm), build the
  // grid's prefix sums, then decode the members' rectangles in chunks and
  // count them batched (NDimArray::CountRects, vectorized for 1-d/2-d
  // grids). Every task writes a disjoint slice of `counts` and only its own
  // group's shards, so the parallel schedule cannot affect the result; the
  // merges themselves are exact integer sums, identical in any order.
  const size_t num_workers = workers.size();
  auto reduce_group = [&](size_t g) {
    SuperCandidate& sc = groups[g];

    if (num_workers > 1) {
      if (sc.quant_attrs.empty()) {
        for (size_t w = 1; w < num_workers; ++w) {
          sc.direct_count += workers[w].direct[g];
        }
      } else if (sc.tree != nullptr || sc.degraded_scan) {
        // Shard 0 is the group's own counts; shards 1..T-1 the workers'.
        auto shard = [&](size_t s) -> uint32_t* {
          return s == 0 ? sc.tree_counts.data()
                        : workers[s].tree_counts[g].data();
        };
        const size_t len = sc.tree_counts.size();
        for (size_t step = 1; step < num_workers; step *= 2) {
          for (size_t i = 0; i + step < num_workers; i += 2 * step) {
            kern.add_u32(shard(i), shard(i + step), len);
          }
        }
      } else if (sc.array != nullptr && !sc.atomic_shared) {
        auto shard = [&](size_t s) -> NDimArray* {
          return s == 0 ? sc.array.get() : workers[s].arrays[g].get();
        };
        for (size_t step = 1; step < num_workers; step *= 2) {
          for (size_t i = 0; i + step < num_workers; i += 2 * step) {
            shard(i)->AddFrom(*shard(i + step));
          }
        }
        for (size_t w = 1; w < num_workers; ++w) {
          workers[w].arrays[g].reset();
        }
      }
    }

    if (sc.quant_attrs.empty()) {
      // Counts are bounded by the record count, but that invariant lives far
      // from here (in the scan workers); guard the narrowing explicitly.
      QARM_CHECK_LE(sc.direct_count, std::numeric_limits<uint32_t>::max());
      counts[sc.members[0]] = static_cast<uint32_t>(sc.direct_count);
      return;
    }
    if (sc.tree != nullptr || sc.degraded_scan) {
      for (size_t m = 0; m < sc.members.size(); ++m) {
        counts[sc.members[m]] = sc.tree_counts[m];
      }
      return;
    }
    sc.array->BuildPrefixSums();
    const size_t dims = sc.quant_attrs.size();
    // Chunked batched collect: decode member rectangles into dim-major SoA
    // bounds, then count the whole chunk in one call.
    constexpr size_t kChunk = 2048;
    const size_t chunk = std::min(kChunk, sc.members.size());
    std::vector<int32_t> los(dims * chunk);
    std::vector<int32_t> his(dims * chunk);
    std::vector<uint32_t> out(chunk);
    std::vector<int32_t> ids(k);
    for (size_t begin = 0; begin < sc.members.size(); begin += chunk) {
      const size_t num = std::min(chunk, sc.members.size() - begin);
      for (size_t m = 0; m < num; ++m) {
        candidates.Get(sc.members[begin + m], ids.data());
        size_t d = 0;
        for (size_t i = 0; i < k; ++i) {
          const RangeItem& item = catalog.item(ids[i]);
          if (!is_ranged(item.attr)) continue;
          los[d * num + m] = item.lo;
          his[d * num + m] = item.hi;
          ++d;
        }
      }
      sc.array->CountRects(los.data(), his.data(), num, out.data());
      for (size_t m = 0; m < num; ++m) {
        counts[sc.members[begin + m]] = out[m];
      }
    }
    sc.array.reset();  // release the grid before the next group collects
  };

  if (pool != nullptr) {
    pool->ParallelFor(groups.size(), reduce_group);
  } else {
    for (size_t g = 0; g < groups.size(); ++g) reduce_group(g);
  }
  workers.clear();
  local_stats.reduce_seconds = phase_timer.ElapsedSeconds();
  local_stats.io = source.io_stats() - io_before;

  if (stats != nullptr) *stats = local_stats;
  return counts;
}

}  // namespace qarm
