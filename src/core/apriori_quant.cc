#include "core/apriori_quant.h"

#include <cmath>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidate_gen.h"

namespace qarm {

FrequentItemsetResult MineFrequentItemsets(const MappedTable& table,
                                           const ItemCatalog& catalog,
                                           const MinerOptions& options) {
  const MappedTableSource source(
      table, PickBlockRows(table.num_rows(),
                           ResolveNumThreads(options.num_threads),
                           options.stream_block_rows));
  Result<FrequentItemsetResult> result =
      MineFrequentItemsets(source, catalog, options);
  QARM_CHECK(result.ok());  // in-memory block reads cannot fail
  return std::move(result).value();
}

Result<FrequentItemsetResult> MineFrequentItemsets(
    const RecordSource& source, const ItemCatalog& catalog,
    const MinerOptions& options, const FrequentItemsetResult* resume_from,
    const AfterPassFn& after_pass) {
  FrequentItemsetResult result;
  const size_t num_rows = source.num_rows();
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.minsup * static_cast<double>(num_rows) - 1e-9));
  if (min_count == 0) min_count = 1;

  Timer timer;
  size_t k = 0;
  ItemsetSet frequent(1);
  if (resume_from != nullptr && !resume_from->passes.empty()) {
    // Skip the completed levels and rebuild the frontier from the last
    // one; its itemsets were checkpointed in generation (lexicographic)
    // order, which GenerateCandidates requires.
    result = *resume_from;
    const size_t last_k = result.passes.back().k;
    frequent = ItemsetSet(last_k);
    for (const FrequentItemset& itemset : result.itemsets) {
      if (itemset.items.size() == last_k) {
        frequent.AppendVector(itemset.items);
      }
    }
    k = last_k + 1;
  } else {
    // L1: the frequent items themselves (their supports are known from the
    // catalog's marginals; no counting pass is needed).
    PassStats pass;
    pass.k = 1;
    pass.num_candidates = catalog.num_items();
    for (size_t i = 0; i < catalog.num_items(); ++i) {
      const int32_t id = static_cast<int32_t>(i);
      const uint64_t count = catalog.item_count(id);
      // Items were already generated with support >= minsup.
      result.itemsets.push_back(FrequentItemset{{id}, count});
      frequent.AppendVector({id});
    }
    pass.num_frequent = frequent.size();
    pass.seconds = timer.ElapsedSeconds();
    result.passes.push_back(pass);
    if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
    k = 2;
  }

  while (!frequent.empty() &&
         (options.max_itemset_size == 0 || k <= options.max_itemset_size)) {
    timer.Reset();
    PassStats pass;
    pass.k = k;
    ItemsetSet candidates = GenerateCandidates(catalog, frequent,
                                               options.num_threads,
                                               &pass.candgen);
    pass.num_candidates = candidates.size();
    if (candidates.empty()) {
      pass.seconds = timer.ElapsedSeconds();
      result.passes.push_back(pass);
      if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
      break;
    }
    QARM_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        CountSupports(source, catalog, candidates, options, &pass.counting));

    ItemsetSet next(k);
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (counts[c] >= min_count) {
        result.itemsets.push_back(
            FrequentItemset{candidates.itemset_vector(c), counts[c]});
        next.Append(candidates.itemset(c));
      }
    }
    pass.num_frequent = next.size();
    pass.seconds = timer.ElapsedSeconds();
    result.passes.push_back(pass);
    if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
    frequent = std::move(next);
    ++k;
  }
  return result;
}

}  // namespace qarm
