#include "core/apriori_quant.h"

#include <cmath>
#include <memory>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidate_gen.h"

namespace qarm {

FrequentItemsetResult MineFrequentItemsets(const MappedTable& table,
                                           const ItemCatalog& catalog,
                                           const MinerOptions& options) {
  const MappedTableSource source(
      table, PickBlockRows(table.num_rows(),
                           ResolveNumThreads(options.num_threads),
                           options.stream_block_rows));
  Result<FrequentItemsetResult> result =
      MineFrequentItemsets(source, catalog, options);
  QARM_CHECK(result.ok());  // in-memory block reads cannot fail
  return std::move(result).value();
}

namespace {

// Pass 2's frontier is all of L1 exactly when it lists every catalog item
// in id order — always true for runs the miner produced (pass 1 emits the
// whole catalog), but a restored checkpoint earns a linear verify before
// the implicit cross product substitutes for the materialized join.
bool FrontierIsWholeCatalog(const ItemsetSet& frequent,
                            const ItemCatalog& catalog) {
  if (frequent.k() != 1 || frequent.size() != catalog.num_items()) {
    return false;
  }
  for (size_t i = 0; i < frequent.size(); ++i) {
    if (frequent.itemset(i)[0] != static_cast<int32_t>(i)) return false;
  }
  return true;
}

}  // namespace

Result<FrequentItemsetResult> MineFrequentItemsets(
    const RecordSource& source, const ItemCatalog& catalog,
    const MinerOptions& options, const FrequentItemsetResult* resume_from,
    const AfterPassFn& after_pass, const CountSupportsFn& count_supports) {
  FrequentItemsetResult result;
  const size_t num_rows = source.num_rows();
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.minsup * static_cast<double>(num_rows) - 1e-9));
  if (min_count == 0) min_count = 1;

  Timer timer;
  size_t k = 0;
  ItemsetSet frequent(1);
  if (resume_from != nullptr && !resume_from->passes.empty()) {
    // Skip the completed levels and rebuild the frontier from the last
    // one; its itemsets were checkpointed in generation (lexicographic)
    // order, which GenerateCandidates requires.
    result = *resume_from;
    if (options.collect_candidate_counts) {
      // A base restored from an older checkpoint may lack some passes'
      // counts; keep the vector parallel to `passes` regardless.
      result.candidate_counts.resize(result.passes.size());
    }
    const size_t last_k = result.passes.back().k;
    frequent = ItemsetSet(last_k);
    for (const FrequentItemset& itemset : result.itemsets) {
      if (itemset.items.size() == last_k) {
        frequent.AppendVector(itemset.items);
      }
    }
    k = last_k + 1;
  } else {
    // L1: the frequent items themselves (their supports are known from the
    // catalog's marginals; no counting pass is needed).
    PassStats pass;
    pass.k = 1;
    pass.num_candidates = catalog.num_items();
    for (size_t i = 0; i < catalog.num_items(); ++i) {
      const int32_t id = static_cast<int32_t>(i);
      const uint64_t count = catalog.item_count(id);
      // Items were already generated with support >= minsup.
      result.itemsets.push_back(FrequentItemset{{id}, count});
      frequent.AppendVector({id});
    }
    pass.num_frequent = frequent.size();
    pass.seconds = timer.ElapsedSeconds();
    result.passes.push_back(pass);
    // Pass 1 counts nothing (L1 supports live in the catalog), so its
    // candidate-count slot stays empty.
    if (options.collect_candidate_counts) {
      result.candidate_counts.emplace_back();
    }
    if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
    k = 2;
  }

  while (!frequent.empty() &&
         (options.max_itemset_size == 0 || k <= options.max_itemset_size)) {
    timer.Reset();
    PassStats pass;
    pass.k = k;
    // Pass 2 streams the implicit cross product of L1 (bounded chunks, no
    // 3.4M-candidate materialization); every later pass materializes its
    // join as before and wraps it in a stream view.
    ItemsetSet materialized(k);
    std::unique_ptr<CandidateStream> candidates;
    if (k == 2 && FrontierIsWholeCatalog(frequent, catalog)) {
      Timer gen_timer;
      auto pairs = std::make_unique<ImplicitPairStream>(catalog);
      pass.candgen.join_candidates = pairs->size();
      pass.candgen.peak_materialized =
          std::min(pairs->size(), ImplicitPairStream::kDefaultChunkRows);
      pass.candgen.join_seconds = gen_timer.ElapsedSeconds();
      pass.candgen.seconds = pass.candgen.join_seconds;
      candidates = std::move(pairs);
    } else {
      materialized = GenerateCandidates(catalog, frequent,
                                        options.num_threads, &pass.candgen);
      candidates = std::make_unique<ItemsetStreamView>(materialized);
    }
    pass.num_candidates = candidates->size();
    if (candidates->size() == 0) {
      pass.seconds = timer.ElapsedSeconds();
      result.passes.push_back(pass);
      if (options.collect_candidate_counts) {
        result.candidate_counts.emplace_back();
      }
      if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
      break;
    }
    QARM_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        count_supports
            ? count_supports(*candidates, &pass.counting)
            : CountSupports(source, catalog, *candidates, options,
                            &pass.counting));
    if (counts.size() != candidates->size()) {
      return Status::Internal("support counts do not match candidate count");
    }

    ItemsetSet next(k);
    candidates->ForEachChunk([&](size_t first, const ItemsetSet& chunk) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        const size_t c = first + i;
        if (counts[c] >= min_count) {
          result.itemsets.push_back(
              FrequentItemset{chunk.itemset_vector(i), counts[c]});
          next.Append(chunk.itemset(i));
        }
      }
    });
    pass.num_frequent = next.size();
    pass.seconds = timer.ElapsedSeconds();
    result.passes.push_back(pass);
    if (options.collect_candidate_counts) {
      result.candidate_counts.push_back(std::move(counts));
    }
    if (after_pass) QARM_RETURN_NOT_OK(after_pass(result));
    frequent = std::move(next);
    ++k;
  }
  return result;
}

}  // namespace qarm
