// The paper's item (Section 2): a triple <attribute, lo, hi> over the mapped
// integer domain denoting a quantitative attribute with a value in [lo, hi],
// or a categorical attribute with value lo (== hi). An itemset holds at most
// one item per attribute, sorted by attribute.
#ifndef QARM_CORE_ITEM_H_
#define QARM_CORE_ITEM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "partition/mapped_table.h"

namespace qarm {

// <attribute x, l, u> in the mapped integer domain.
struct RangeItem {
  int32_t attr = 0;
  int32_t lo = 0;
  int32_t hi = 0;

  bool operator==(const RangeItem& other) const {
    return attr == other.attr && lo == other.lo && hi == other.hi;
  }
  // Total order: by attribute, then range.
  bool operator<(const RangeItem& other) const {
    if (attr != other.attr) return attr < other.attr;
    if (lo != other.lo) return lo < other.lo;
    return hi < other.hi;
  }

  // True if this item's range contains `other`'s (same attribute).
  bool Generalizes(const RangeItem& other) const {
    return attr == other.attr && lo <= other.lo && other.hi <= hi;
  }

  // Number of mapped values covered.
  int64_t Width() const { return static_cast<int64_t>(hi) - lo + 1; }
};

// Sorted-by-attribute set of items, at most one per attribute.
using RangeItemset = std::vector<RangeItem>;

// attributes(X): the sorted attribute ids of an itemset.
std::vector<int32_t> AttributesOf(const RangeItemset& itemset);

// True if `general` is a generalization of `special`: same attributes and
// every range of `general` contains the corresponding range of `special`
// (Section 2). Every itemset generalizes itself.
bool IsGeneralization(const RangeItemset& general,
                      const RangeItemset& special);

// True for a strict generalization (generalizes and differs).
bool IsStrictGeneralization(const RangeItemset& general,
                            const RangeItemset& special);

// X - X' when X' is a specialization of X and the set difference of the
// covered regions is itself a box expressible as an itemset: X' must differ
// from X in exactly one attribute and share one endpoint there (Section 4:
// "X - X' in I_R"). Returns false otherwise.
bool BoxDifference(const RangeItemset& x, const RangeItemset& x_prime,
                   RangeItemset* difference);

// Renders "<Age: 20..29> and <Married: Yes>" using decode metadata.
std::string ItemToString(const RangeItem& item, const MappedTable& table);
std::string ItemsetToString(const RangeItemset& itemset,
                            const MappedTable& table);

// True if the record (mapped values, one per attribute) supports the
// itemset.
bool RecordSupports(const int32_t* record, const RangeItemset& itemset);

}  // namespace qarm

#endif  // QARM_CORE_ITEM_H_
