#include "core/item.h"

#include "common/string_util.h"

namespace qarm {

std::vector<int32_t> AttributesOf(const RangeItemset& itemset) {
  std::vector<int32_t> attrs;
  attrs.reserve(itemset.size());
  for (const RangeItem& item : itemset) attrs.push_back(item.attr);
  return attrs;
}

bool IsGeneralization(const RangeItemset& general,
                      const RangeItemset& special) {
  if (general.size() != special.size()) return false;
  for (size_t i = 0; i < general.size(); ++i) {
    if (!general[i].Generalizes(special[i])) return false;
  }
  return true;
}

bool IsStrictGeneralization(const RangeItemset& general,
                            const RangeItemset& special) {
  return IsGeneralization(general, special) && general != special;
}

bool BoxDifference(const RangeItemset& x, const RangeItemset& x_prime,
                   RangeItemset* difference) {
  if (!IsStrictGeneralization(x, x_prime)) return false;
  // Find the attributes where the ranges differ.
  size_t differing = x.size();
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].lo != x_prime[i].lo || x[i].hi != x_prime[i].hi) {
      if (differing != x.size()) return false;  // more than one differs
      differing = i;
    }
  }
  if (differing == x.size()) return false;  // identical (guarded above)
  const RangeItem& outer = x[differing];
  const RangeItem& inner = x_prime[differing];
  RangeItem diff_item;
  diff_item.attr = outer.attr;
  if (inner.lo == outer.lo) {
    // Remainder is the upper piece.
    diff_item.lo = inner.hi + 1;
    diff_item.hi = outer.hi;
  } else if (inner.hi == outer.hi) {
    // Remainder is the lower piece.
    diff_item.lo = outer.lo;
    diff_item.hi = inner.lo - 1;
  } else {
    return false;  // interior sub-range: difference splits into two boxes
  }
  *difference = x;
  (*difference)[differing] = diff_item;
  return true;
}

std::string ItemToString(const RangeItem& item, const MappedTable& table) {
  const MappedAttribute& attr =
      table.attribute(static_cast<size_t>(item.attr));
  return StrFormat("<%s: %s>", attr.name.c_str(),
                   attr.DecodeRange(item.lo, item.hi).c_str());
}

std::string ItemsetToString(const RangeItemset& itemset,
                            const MappedTable& table) {
  std::vector<std::string> parts;
  parts.reserve(itemset.size());
  for (const RangeItem& item : itemset) {
    parts.push_back(ItemToString(item, table));
  }
  return Join(parts, " and ");
}

bool RecordSupports(const int32_t* record, const RangeItemset& itemset) {
  for (const RangeItem& item : itemset) {
    int32_t v = record[item.attr];
    if (v < item.lo || v > item.hi) return false;
  }
  return true;
}

}  // namespace qarm
