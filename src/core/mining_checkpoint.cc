#include "core/mining_checkpoint.h"

#include <cstring>

#include "common/hash.h"

namespace qarm {
namespace {

// Incremental SplitMix64 chaining: order-sensitive, so permuted option
// values cannot collide by accident.
class FingerprintHasher {
 public:
  void Mix(uint64_t value) { state_ = SplitMix64(state_ ^ value); }
  void MixDouble(double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0x51434b5054464e47ULL;  // "QCKPTFNG"
};

}  // namespace

uint64_t ComputeMiningOptionsFingerprint(const MinerOptions& options,
                                         const RecordSource& source) {
  // Only output-affecting options are mixed in. Execution knobs —
  // num_threads, num_workers, memory budgets, fault specs — are excluded
  // on purpose: counts are exact and merges happen in a fixed order, so a
  // run checkpointed at one thread/worker count resumes at any other with
  // bit-identical rules. The row count is also excluded here (it joins in
  // ComputeMiningFingerprint below): append-mode runs must be able to
  // match a checkpoint taken before rows were appended.
  FingerprintHasher h;
  h.MixDouble(options.minsup);
  h.MixDouble(options.minconf);
  h.MixDouble(options.max_support);
  h.MixDouble(options.partial_completeness);
  h.Mix(static_cast<uint64_t>(options.partition_method));
  h.Mix(options.num_intervals_override);
  h.Mix(options.max_quantitative_per_rule);
  h.MixDouble(options.interest_level);
  h.Mix(static_cast<uint64_t>(options.interest_mode));
  h.Mix(options.interest_item_prune ? 1 : 0);
  h.Mix(options.max_itemset_size);

  h.Mix(source.num_attributes());
  for (size_t a = 0; a < source.num_attributes(); ++a) {
    const MappedAttribute& attr = source.attribute(a);
    h.Mix(static_cast<uint64_t>(attr.kind));
    h.Mix(attr.domain_size());
    h.Mix(attr.partitioned ? 1 : 0);
    // Taxonomy structure changes which generalized items exist, so it is
    // part of the run's identity even though taxonomies arrive via options.
    h.Mix(attr.taxonomy_ranges.size());
    for (const Taxonomy::NodeRange& node : attr.taxonomy_ranges) {
      h.Mix(static_cast<uint64_t>(static_cast<uint32_t>(node.lo)) << 32 |
            static_cast<uint32_t>(node.hi));
    }
  }
  return h.digest();
}

uint64_t ComputeMiningFingerprint(const MinerOptions& options,
                                  const RecordSource& source) {
  FingerprintHasher h;
  h.Mix(ComputeMiningOptionsFingerprint(options, source));
  h.Mix(source.num_rows());
  return h.digest();
}

CheckpointState BuildCheckpointState(uint64_t fingerprint,
                                     const RecordSource& source,
                                     const ItemCatalog& catalog,
                                     const FrequentItemsetResult& progress) {
  CheckpointState state;
  state.fingerprint = fingerprint;
  state.num_rows = source.num_rows();
  state.num_attributes = static_cast<uint32_t>(source.num_attributes());
  state.catalog = catalog.Snapshot();

  state.passes.reserve(progress.passes.size());
  for (const PassStats& pass : progress.passes) {
    CheckpointPass saved;
    saved.k = static_cast<uint32_t>(pass.k);
    saved.num_candidates = pass.num_candidates;
    state.passes.push_back(std::move(saved));
  }
  // Itemsets are stored grouped by level in generation order — the order
  // the resumed run's frontier must preserve.
  for (const FrequentItemset& itemset : progress.itemsets) {
    const size_t k = itemset.items.size();
    QARM_CHECK_GE(k, 1u);
    QARM_CHECK_LE(k, state.passes.size());
    CheckpointPass& saved = state.passes[k - 1];
    saved.itemsets.insert(saved.itemsets.end(), itemset.items.begin(),
                          itemset.items.end());
    saved.counts.push_back(itemset.count);
  }
  // Full per-candidate counts (collect_candidate_counts) travel with the
  // pass they belong to; absent or mismatched vectors are simply not
  // stored — the checkpoint stays valid for resume, just not as an
  // incremental base for that pass.
  if (progress.candidate_counts.size() == progress.passes.size()) {
    for (size_t p = 0; p < progress.passes.size(); ++p) {
      const std::vector<uint32_t>& counts = progress.candidate_counts[p];
      if (!counts.empty() && counts.size() == progress.passes[p].num_candidates) {
        state.passes[p].candidate_counts = counts;
      }
    }
  }
  return state;
}

Status RestoreCheckpointProgress(const CheckpointState& state,
                                 const ItemCatalog& catalog,
                                 FrequentItemsetResult* progress) {
  progress->itemsets.clear();
  progress->passes.clear();
  progress->candidate_counts.clear();
  if (state.passes.empty()) {
    return Status::InvalidArgument("checkpoint records no completed passes");
  }
  const int32_t num_items = static_cast<int32_t>(catalog.num_items());
  for (size_t p = 0; p < state.passes.size(); ++p) {
    const CheckpointPass& saved = state.passes[p];
    // Levels are consecutive from 1: pass p holds the (p+1)-itemsets.
    if (saved.k != p + 1) {
      return Status::InvalidArgument(
          "checkpoint passes are not consecutive levels");
    }
    if (saved.itemsets.size() != saved.counts.size() * saved.k) {
      return Status::InvalidArgument(
          "checkpoint pass itemsets/counts out of sync");
    }
    for (int32_t id : saved.itemsets) {
      if (id < 0 || id >= num_items) {
        return Status::InvalidArgument(
            "checkpoint itemset references an unknown item");
      }
    }
    PassStats pass;
    pass.k = saved.k;
    pass.num_candidates = static_cast<size_t>(saved.num_candidates);
    pass.num_frequent = saved.counts.size();
    progress->passes.push_back(pass);
    progress->candidate_counts.push_back(saved.candidate_counts);
    for (size_t i = 0; i < saved.counts.size(); ++i) {
      FrequentItemset itemset;
      itemset.items.assign(saved.itemsets.begin() + i * saved.k,
                           saved.itemsets.begin() + (i + 1) * saved.k);
      itemset.count = saved.counts[i];
      progress->itemsets.push_back(std::move(itemset));
    }
  }
  return Status::OK();
}

}  // namespace qarm
