#include "core/rules_export.h"

#include <map>
#include <utility>
#include <vector>

namespace qarm {
namespace {

std::vector<StoredItem> ToStoredItems(const RangeItemset& side) {
  std::vector<StoredItem> items;
  items.reserve(side.size());
  for (const RangeItem& item : side) {
    items.push_back(StoredItem{item.attr, item.lo, item.hi});
  }
  return items;
}

}  // namespace

StoredRuleSet ExportRuleSet(const MiningResult& result,
                            const MinerOptions& options) {
  StoredRuleSet set;
  set.attributes = result.mapped.attributes();
  set.num_records = result.stats.num_records;
  set.minsup = options.minsup;
  set.minconf = options.minconf;
  set.interest_level = options.interest_level;

  // Consequent-support lookup for the lift measure. RangeItemset orders
  // lexicographically (RangeItem has a total order), so a std::map keys on
  // it directly.
  std::map<RangeItemset, double> support_of;
  for (const FrequentRangeItemset& frequent : result.frequent_itemsets) {
    support_of.emplace(frequent.items, frequent.support);
  }

  set.rules.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    StoredRule stored;
    stored.antecedent = ToStoredItems(rule.antecedent);
    stored.consequent = ToStoredItems(rule.consequent);
    stored.count = rule.count;
    stored.support = rule.support;
    stored.confidence = rule.confidence;
    stored.interesting = rule.interesting;
    auto it = support_of.find(rule.consequent);
    if (it != support_of.end() && it->second > 0.0) {
      stored.lift = rule.confidence / it->second;
    }
    set.rules.push_back(std::move(stored));
  }
  return set;
}

}  // namespace qarm
