// QuantitativeRuleMiner — the public facade implementing the paper's
// five-step decomposition (Section 2.1):
//   1. choose the number of partitions per quantitative attribute,
//   2. map values/intervals to consecutive integers,
//   3. find frequent items and frequent itemsets,
//   4. generate rules,
//   5. mark the interesting rules.
//
// Typical use:
//   MinerOptions options;
//   options.minsup = 0.4; options.minconf = 0.5;
//   QuantitativeRuleMiner miner(options);
//   Result<MiningResult> result = miner.Mine(table);
//   for (const QuantRule& r : result->rules)
//     std::cout << RuleToString(r, result->mapped) << "\n";
#ifndef QARM_CORE_MINER_H_
#define QARM_CORE_MINER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "core/apriori_quant.h"
#include "core/mining_checkpoint.h"
#include "core/options.h"
#include "core/rules.h"
#include "partition/mapped_table.h"
#include "table/table.h"

namespace qarm {

// A frequent itemset decoded to explicit ranges.
struct FrequentRangeItemset {
  RangeItemset items;
  uint64_t count = 0;
  double support = 0.0;
};

// Per-pass coordinator-side accounting of one distributed counting
// exchange (pass 1's value-count scan appears as k == 1).
struct DistPassStats {
  size_t k = 0;
  uint64_t bytes_sent = 0;      // coordinator -> workers, framed
  uint64_t bytes_received = 0;  // workers -> coordinator, framed
  double exchange_seconds = 0.0;  // send requests + await all replies
  double merge_seconds = 0.0;     // fixed-order merge of shard counts
};

// Per-worker robustness accounting for one distributed run. Fork-mode
// workers have an empty endpoint and count respawns; TCP workers count
// reconnects (and how many of those redistributed the shard to a
// different endpoint) plus the liveness traffic seen on their channel.
struct DistWorkerStats {
  uint32_t worker_id = 0;
  std::string endpoint;           // "" in fork mode, HOST:PORT over TCP
  size_t respawns = 0;            // fork-mode re-forks of this worker
  size_t reconnects = 0;          // TCP sessions re-established
  size_t redistributed = 0;       // reconnects that moved endpoints
  size_t heartbeats = 0;          // liveness frames seen awaiting replies
  size_t heartbeat_timeouts = 0;  // read deadlines that declared it dead
  size_t frames_retried = 0;      // request/catalog frames resent in replay
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

// Distributed-run statistics (num_workers == 0 for ordinary runs).
struct DistRunStats {
  size_t num_workers = 0;
  size_t workers_respawned = 0;
  std::vector<DistPassStats> passes;
  std::vector<DistWorkerStats> workers;
};

// Aggregate run statistics.
struct MiningStats {
  size_t num_records = 0;
  // Scan parallelism of this run (the resolved num_threads option).
  size_t num_threads = 1;
  size_t num_frequent_items = 0;
  size_t items_pruned_by_interest = 0;
  // Partial completeness achieved by the realized partitioning (Equation 1);
  // 1.0 when nothing was partitioned.
  double achieved_partial_completeness = 1.0;
  std::vector<PassStats> passes;
  size_t num_rules = 0;
  size_t num_interesting_rules = 0;
  // I/O of the pass-1 catalog scan (per-pass counting I/O lives in
  // passes[k].counting.io). Zero for in-memory runs.
  ScanIoStats pass1_io;
  // Checkpoint activity (writes, resume) of this run.
  CheckpointRunStats checkpoint;
  double map_seconds = 0.0;
  double pass1_seconds = 0.0;
  double itemset_seconds = 0.0;
  // Candidate generation time summed over all passes (also available
  // per pass in passes[k].candgen); itemset_seconds includes it.
  double candgen_seconds = 0.0;
  double rulegen_seconds = 0.0;
  double interest_seconds = 0.0;
  double total_seconds = 0.0;
  // Parallelism actually applied per post-counting phase: 1 when the phase
  // fell back to the serial path (too little work to shard), otherwise the
  // resolved worker count. Counting-phase parallelism is per pass, in
  // passes[k].counting.threads_used.
  size_t candgen_threads_used = 1;
  size_t rulegen_threads_used = 1;
  size_t interest_threads_used = 1;
  // Distributed-mode accounting (empty unless --workers > 1).
  DistRunStats dist;
};

// Everything a mining run produces. `mapped` carries the decode metadata
// that renders rules back into raw attribute values.
struct MiningResult {
  MappedTable mapped;
  std::vector<FrequentRangeItemset> frequent_itemsets;
  std::vector<QuantRule> rules;  // every rule; check rule.interesting
  MiningStats stats;

  explicit MiningResult(MappedTable m) : mapped(std::move(m)) {}

  // The rules flagged interesting (all rules when no interest level is set).
  std::vector<QuantRule> InterestingRules() const;
};

// Identity of the QBT file backing a run, stamped into every checkpoint
// the run writes so a later `mine --append` can verify that the file it
// sees is the checkpointed file plus appended blocks (appends never
// rewrite existing bytes, so the index prefix CRC is stable).
struct CheckpointBaseInfo {
  uint64_t num_blocks = 0;  // 0 = not a QBT-backed run; fields stay unset
  uint32_t index_crc = 0;   // QbtReader::IndexPrefixCrc(num_blocks)
};

// Delegates that let a driver (the distributed coordinator, the
// incremental miner) substitute its own implementations for the phases
// that scan records, while the miner keeps running everything else —
// checkpointing, rule generation, interest, decode — unchanged. Any
// member may be left empty to keep the default.
struct MiningHooks {
  // Replaces the pass-1 value-count scan: must return one count vector per
  // attribute (indexed by mapped value) covering the *whole* source.
  // `io`, when non-null, receives the scan's aggregate I/O.
  std::function<Result<std::vector<std::vector<uint64_t>>>(ScanIoStats* io)>
      scan_value_counts;

  // Called once the item catalog exists — freshly built or restored from a
  // checkpoint (`restored`) — and before any counting pass. The distributed
  // coordinator broadcasts the catalog to its workers here. A non-OK return
  // aborts the run.
  std::function<Status(const ItemCatalog& catalog, bool restored)>
      publish_catalog;

  // Replaces each pass's CountSupports call (see apriori_quant.h).
  CountSupportsFn count_supports;

  // Base-file identity recorded in checkpoints (see CheckpointBaseInfo).
  // Left zero for non-QBT runs; drivers that mine a QBT file in append
  // mode fill it so the resulting checkpoints can seed incremental runs.
  CheckpointBaseInfo checkpoint_base;
};

class QuantitativeRuleMiner {
 public:
  explicit QuantitativeRuleMiner(const MinerOptions& options);

  const MinerOptions& options() const { return options_; }

  // Steps 1-5 end to end.
  Result<MiningResult> Mine(const Table& table) const;

  // Steps 3-5 on an already-mapped table (ownership of `mapped` moves into
  // the result). Fails on invalid options, a cancelled run (SIGINT or
  // stop_after_pass — Status::Cancelled), or a failing block read when
  // fault injection is active.
  Result<MiningResult> MineMapped(MappedTable mapped) const;

  // Steps 3-5 streaming block-by-block over `source` (e.g. a QbtFileSource
  // of a larger-than-RAM table). The result's `mapped` table carries only
  // the decode metadata (zero rows); rules and itemsets are bit-identical
  // to an in-memory run over the same records. Fails on invalid options or
  // a failing block read (e.g. a QBT checksum mismatch).
  Result<MiningResult> MineStreamed(const RecordSource& source) const;

  // MineStreamed with the record-scanning phases delegated through `hooks`
  // (distributed mining). `source` still supplies the schema, row count,
  // and checkpoint fingerprint; with all hooks set the coordinator never
  // reads a data block itself.
  Result<MiningResult> MineStreamed(const RecordSource& source,
                                    const MiningHooks& hooks) const;

 private:
  Status ValidateOptions() const;
  // Shared steps 3-5 driver; scans go through `source` (or the hooks, when
  // `hooks` is non-null and populated), stats/output land in `result`
  // (whose `mapped` member only provides decode metadata here).
  Status MineWithSource(const RecordSource& source, MiningResult* result,
                        const MiningHooks* hooks = nullptr) const;

  MinerOptions options_;
};

}  // namespace qarm

#endif  // QARM_CORE_MINER_H_
