#include "core/interest.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/macros.h"
#include "core/expectation.h"

namespace qarm {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

size_t InterestEvaluator::KeyHash::operator()(
    const std::vector<int32_t>& v) const {
  uint64_t h = 1469598103934665603ULL;
  for (int32_t x : v) {
    h ^= static_cast<uint32_t>(x);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

std::vector<int32_t> InterestEvaluator::WildcardKey(const RangeItemset& items,
                                                    size_t wildcard) {
  std::vector<int32_t> key;
  key.reserve(1 + items.size() * 3);
  key.push_back(static_cast<int32_t>(wildcard));
  for (size_t i = 0; i < items.size(); ++i) {
    key.push_back(items[i].attr);
    if (i == wildcard) {
      key.push_back(-1);
      key.push_back(-1);
    } else {
      key.push_back(items[i].lo);
      key.push_back(items[i].hi);
    }
  }
  return key;
}

InterestEvaluator::InterestEvaluator(
    const ItemCatalog* catalog, const std::vector<FrequentItemset>* frequent,
    double interest_level, InterestMode mode)
    : catalog_(catalog),
      level_(interest_level),
      mode_(mode),
      num_records_(catalog->num_records()) {
  if (level_ <= 0.0) return;  // evaluator is a no-op: skip indexing
  decoded_.reserve(frequent->size());
  for (const FrequentItemset& f : *frequent) {
    DecodedItemset d;
    d.items = catalog_->Decode(f.items);
    d.count = f.count;
    decoded_.push_back(std::move(d));
  }
  for (size_t i = 0; i < decoded_.size(); ++i) {
    const RangeItemset& items = decoded_[i].items;
    for (size_t p = 0; p < items.size(); ++p) {
      by_wildcard_[WildcardKey(items, p)].push_back(i);
    }
  }
}

bool InterestEvaluator::IsItemsetRInteresting(const RangeItemset& z,
                                              uint64_t z_count,
                                              const RangeItemset& z_hat,
                                              uint64_t z_hat_count) const {
  const double n = static_cast<double>(num_records_);
  const double sup_z = static_cast<double>(z_count) / n;
  const double sup_z_hat = static_cast<double>(z_hat_count) / n;

  if (sup_z + kEps < level_ * ExpectedSupport(z, z_hat, sup_z_hat, *catalog_)) {
    return false;
  }

  // Specialization-difference test: frequent specializations of z whose
  // difference is a box differ from z in exactly one position, so the
  // wildcard index yields all candidates in O(|z|) lookups.
  RangeItemset difference;
  for (size_t p = 0; p < z.size(); ++p) {
    auto it = by_wildcard_.find(WildcardKey(z, p));
    if (it == by_wildcard_.end()) continue;
    for (size_t index : it->second) {
      const DecodedItemset& spec = decoded_[index];
      if (!BoxDifference(z, spec.items, &difference)) continue;
      QARM_CHECK_GE(z_count, spec.count);
      const double sup_diff = static_cast<double>(z_count - spec.count) / n;
      const double expected =
          ExpectedSupport(difference, z_hat, sup_z_hat, *catalog_);
      if (sup_diff + kEps < level_ * expected) return false;
    }
  }
  return true;
}

bool InterestEvaluator::IsRuleRInterestingWrt(const QuantRule& rule,
                                              const QuantRule& ancestor) const {
  const double expected_support = ExpectedSupport(
      rule.UnionItemset(), ancestor.UnionItemset(), ancestor.support,
      *catalog_);
  const double expected_confidence = ExpectedConfidence(
      rule.consequent, ancestor.consequent, ancestor.confidence, *catalog_);
  const bool support_ok = rule.support + kEps >= level_ * expected_support;
  const bool confidence_ok =
      rule.confidence + kEps >= level_ * expected_confidence;
  const bool rule_ok = mode_ == InterestMode::kSupportOrConfidence
                           ? (support_ok || confidence_ok)
                           : (support_ok && confidence_ok);
  if (!rule_ok) return false;
  return IsItemsetRInteresting(rule.UnionItemset(), rule.count,
                               ancestor.UnionItemset(), ancestor.count);
}

void InterestEvaluator::EvaluateRules(std::vector<QuantRule>* rules) const {
  if (level_ <= 0.0) {
    for (QuantRule& rule : *rules) rule.interesting = true;
    return;
  }

  // Group rules by (antecedent attributes, consequent attributes): ancestors
  // must match the attribute split exactly.
  std::map<std::vector<int32_t>, std::vector<size_t>> groups;
  for (size_t i = 0; i < rules->size(); ++i) {
    std::vector<int32_t> key = AttributesOf((*rules)[i].antecedent);
    key.push_back(-1);
    const std::vector<int32_t> cons = AttributesOf((*rules)[i].consequent);
    key.insert(key.end(), cons.begin(), cons.end());
    groups[std::move(key)].push_back(i);
  }

  auto rule_generalizes = [](const QuantRule& a, const QuantRule& b) {
    // a is a strict generalization of b (as a rule).
    if (!IsGeneralization(a.antecedent, b.antecedent)) return false;
    if (!IsGeneralization(a.consequent, b.consequent)) return false;
    return a.antecedent != b.antecedent || a.consequent != b.consequent;
  };

  // Total covered volume (product of range widths, both sides): a strict
  // generalization always has strictly larger volume, so descending volume
  // is a topological order over the generalization DAG.
  auto volume = [](const QuantRule& rule) {
    double v = 1.0;
    for (const RangeItem& item : rule.antecedent) {
      v *= static_cast<double>(item.Width());
    }
    for (const RangeItem& item : rule.consequent) {
      v *= static_cast<double>(item.Width());
    }
    return v;
  };

  for (const auto& [key, members] : groups) {
    std::vector<size_t> order = members;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return volume((*rules)[a]) > volume((*rules)[b]);
    });

    // Only the *interesting* ancestors processed so far matter: a rule with
    // no ancestors is interesting by definition, and a rule whose ancestors
    // are all uninteresting passes vacuously (its close interesting
    // ancestor set is empty). So uninteresting rules never need indexing.
    std::vector<size_t> interesting_so_far;  // global indices, volume desc
    std::vector<size_t> ancestors;           // scratch
    for (size_t index : order) {
      QuantRule& rule = (*rules)[index];
      ancestors.clear();
      for (size_t candidate : interesting_so_far) {
        if (rule_generalizes((*rules)[candidate], rule)) {
          ancestors.push_back(candidate);
        }
      }
      bool interesting = true;
      if (!ancestors.empty()) {
        // Close = most specialized: drop any ancestor that strictly
        // generalizes another interesting ancestor. `ancestors` is in
        // descending-volume order, so scan pairs once.
        for (size_t i = 0; i < ancestors.size() && interesting; ++i) {
          bool has_closer = false;
          for (size_t j = 0; j < ancestors.size(); ++j) {
            if (i == j) continue;
            if (rule_generalizes((*rules)[ancestors[i]],
                                 (*rules)[ancestors[j]])) {
              has_closer = true;
              break;
            }
          }
          if (has_closer) continue;  // not a close ancestor
          if (!IsRuleRInterestingWrt(rule, (*rules)[ancestors[i]])) {
            interesting = false;
          }
        }
      }
      rule.interesting = interesting;
      if (interesting) interesting_so_far.push_back(index);
    }
  }
}

}  // namespace qarm
