#include "core/interest.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/expectation.h"

namespace qarm {
namespace {

constexpr double kEps = 1e-9;

// Below this many rules the grouping + evaluation is cheaper than waking a
// pool; the serial path is taken regardless of num_threads.
constexpr size_t kMinParallelRules = 64;

}  // namespace

std::vector<int32_t> InterestEvaluator::WildcardKey(const RangeItemset& items,
                                                    size_t wildcard) {
  std::vector<int32_t> key;
  key.reserve(1 + items.size() * 3);
  key.push_back(static_cast<int32_t>(wildcard));
  for (size_t i = 0; i < items.size(); ++i) {
    key.push_back(items[i].attr);
    if (i == wildcard) {
      key.push_back(-1);
      key.push_back(-1);
    } else {
      key.push_back(items[i].lo);
      key.push_back(items[i].hi);
    }
  }
  return key;
}

InterestEvaluator::InterestEvaluator(
    const ItemCatalog* catalog, const std::vector<FrequentItemset>* frequent,
    double interest_level, InterestMode mode)
    : catalog_(catalog),
      level_(interest_level),
      mode_(mode),
      num_records_(catalog->num_records()) {
  if (level_ <= 0.0) return;  // evaluator is a no-op: skip indexing
  decoded_.reserve(frequent->size());
  for (const FrequentItemset& f : *frequent) {
    DecodedItemset d;
    d.items = catalog_->Decode(f.items);
    d.count = f.count;
    decoded_.push_back(std::move(d));
  }
  for (size_t i = 0; i < decoded_.size(); ++i) {
    const RangeItemset& items = decoded_[i].items;
    for (size_t p = 0; p < items.size(); ++p) {
      by_wildcard_[WildcardKey(items, p)].push_back(i);
    }
  }
}

bool InterestEvaluator::IsItemsetRInteresting(const RangeItemset& z,
                                              uint64_t z_count,
                                              const RangeItemset& z_hat,
                                              uint64_t z_hat_count) const {
  const double n = static_cast<double>(num_records_);
  const double sup_z = static_cast<double>(z_count) / n;
  const double sup_z_hat = static_cast<double>(z_hat_count) / n;

  if (sup_z + kEps < level_ * ExpectedSupport(z, z_hat, sup_z_hat, *catalog_)) {
    return false;
  }

  // Specialization-difference test: frequent specializations of z whose
  // difference is a box differ from z in exactly one position, so the
  // wildcard index yields all candidates in O(|z|) lookups.
  RangeItemset difference;
  for (size_t p = 0; p < z.size(); ++p) {
    auto it = by_wildcard_.find(WildcardKey(z, p));
    if (it == by_wildcard_.end()) continue;
    for (size_t index : it->second) {
      const DecodedItemset& spec = decoded_[index];
      if (!BoxDifference(z, spec.items, &difference)) continue;
      QARM_CHECK_GE(z_count, spec.count);
      const double sup_diff = static_cast<double>(z_count - spec.count) / n;
      const double expected =
          ExpectedSupport(difference, z_hat, sup_z_hat, *catalog_);
      if (sup_diff + kEps < level_ * expected) return false;
    }
  }
  return true;
}

bool InterestEvaluator::IsRuleRInterestingWrt(const QuantRule& rule,
                                              const QuantRule& ancestor) const {
  const double expected_support = ExpectedSupport(
      rule.UnionItemset(), ancestor.UnionItemset(), ancestor.support,
      *catalog_);
  const double expected_confidence = ExpectedConfidence(
      rule.consequent, ancestor.consequent, ancestor.confidence, *catalog_);
  const bool support_ok = rule.support + kEps >= level_ * expected_support;
  const bool confidence_ok =
      rule.confidence + kEps >= level_ * expected_confidence;
  const bool rule_ok = mode_ == InterestMode::kSupportOrConfidence
                           ? (support_ok || confidence_ok)
                           : (support_ok && confidence_ok);
  if (!rule_ok) return false;
  return IsItemsetRInteresting(rule.UnionItemset(), rule.count,
                               ancestor.UnionItemset(), ancestor.count);
}

void InterestEvaluator::EvaluateRules(std::vector<QuantRule>* rules,
                                      size_t num_threads,
                                      size_t* threads_used) const {
  if (threads_used != nullptr) *threads_used = 1;
  if (level_ <= 0.0) {
    for (QuantRule& rule : *rules) rule.interesting = true;
    return;
  }

  // Group rules by (antecedent attributes, consequent attributes): ancestors
  // must match the attribute split exactly. Ordered map so the grouping is
  // deterministic; the groups are fully independent afterwards.
  std::map<std::vector<int32_t>, std::vector<size_t>> groups;
  for (size_t i = 0; i < rules->size(); ++i) {
    std::vector<int32_t> key = AttributesOf((*rules)[i].antecedent);
    key.push_back(-1);
    const std::vector<int32_t> cons = AttributesOf((*rules)[i].consequent);
    key.insert(key.end(), cons.begin(), cons.end());
    groups[std::move(key)].push_back(i);
  }

  auto rule_generalizes = [](const QuantRule& a, const QuantRule& b) {
    // a is a strict generalization of b (as a rule).
    if (!IsGeneralization(a.antecedent, b.antecedent)) return false;
    if (!IsGeneralization(a.consequent, b.consequent)) return false;
    return a.antecedent != b.antecedent || a.consequent != b.consequent;
  };

  // Total covered volume (product of range widths, both sides): a strict
  // generalization always has strictly larger volume, so descending volume
  // is a topological order over the generalization DAG.
  auto volume = [](const QuantRule& rule) {
    double v = 1.0;
    for (const RangeItem& item : rule.antecedent) {
      v *= static_cast<double>(item.Width());
    }
    for (const RangeItem& item : rule.consequent) {
      v *= static_cast<double>(item.Width());
    }
    return v;
  };

  // Evaluates one group start to finish. Writes only its own members'
  // `interesting` flags, reads only its own members and the evaluator's
  // immutable state — groups never touch each other, so any schedule
  // produces identical flags.
  auto evaluate_group = [&](const std::vector<size_t>& members) {
    std::vector<size_t> order = members;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double va = volume((*rules)[a]);
      const double vb = volume((*rules)[b]);
      // Index tie-break: equal-volume rules are never mutually ancestral
      // (a strict generalization has strictly larger volume), so the tie
      // order cannot change any flag — it only pins the schedule.
      if (va != vb) return va > vb;
      return a < b;
    });

    // Only the *interesting* ancestors processed so far matter: a rule with
    // no ancestors is interesting by definition, and a rule whose ancestors
    // are all uninteresting passes vacuously (its close interesting
    // ancestor set is empty). So uninteresting rules never need indexing.
    std::vector<size_t> interesting_so_far;  // global indices, volume desc
    std::vector<size_t> ancestors;           // scratch, volume desc
    std::vector<size_t> close;               // scratch, volume asc
    for (size_t index : order) {
      QuantRule& rule = (*rules)[index];
      ancestors.clear();
      for (size_t candidate : interesting_so_far) {
        if (rule_generalizes((*rules)[candidate], rule)) {
          ancestors.push_back(candidate);
        }
      }
      // Close = most specialized: the minimal elements of the ancestor set
      // under the generalization order. Sweep ancestors by *ascending*
      // volume (most specialized first): an ancestor is close iff it does
      // not strictly generalize any close ancestor already found —
      // checking the close set alone suffices because generalization is
      // transitive (if A generalizes a dropped B, it also generalizes the
      // closer ancestor that disqualified B). This replaces the all-pairs
      // O(|ancestors|²) scan with O(|ancestors| · |close|), and |close| is
      // small (mutually incomparable rules over the same attributes).
      bool interesting = true;
      close.clear();
      for (size_t a = ancestors.size(); a-- > 0 && interesting;) {
        const QuantRule& ancestor = (*rules)[ancestors[a]];
        bool dominated = false;
        for (size_t c : close) {
          if (rule_generalizes(ancestor, (*rules)[c])) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;  // not a close ancestor
        close.push_back(ancestors[a]);
        if (!IsRuleRInterestingWrt(rule, ancestor)) interesting = false;
      }
      rule.interesting = interesting;
      if (interesting) interesting_so_far.push_back(index);
    }
  };

  const size_t threads = rules->size() >= kMinParallelRules
                             ? std::min(ResolveNumThreads(num_threads),
                                        groups.size())
                             : 1;
  if (threads <= 1) {
    for (const auto& [key, members] : groups) evaluate_group(members);
    return;
  }
  if (threads_used != nullptr) *threads_used = threads;

  // One task per group, biggest first: group costs are quadratic in member
  // count, so starting the heavy ones early lets the pool's dynamic task
  // claiming backfill the small ones behind them.
  std::vector<const std::vector<size_t>*> group_list;
  group_list.reserve(groups.size());
  for (const auto& [key, members] : groups) group_list.push_back(&members);
  std::stable_sort(group_list.begin(), group_list.end(),
                   [](const std::vector<size_t>* a,
                      const std::vector<size_t>* b) {
                     return a->size() > b->size();
                   });
  ThreadPool pool(threads);
  pool.ParallelFor(group_list.size(),
                   [&](size_t g) { evaluate_group(*group_list[g]); });
}

}  // namespace qarm
