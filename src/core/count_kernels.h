// Block-level SIMD kernels for the support-counting scan (Section 5's
// hottest loop). Instead of testing one record at a time, the kernel path
// computes, per super-candidate, a bitmask over a whole block's rows —
// vectorized equality/range compares per dimension, ANDed across
// dimensions — and popcounts it into the counters.
//
// Masks are bitsets over a block's rows: bit r%64 of word r/64 is row r.
// `fill_ones` establishes the invariant that bits at and above `n` are
// zero; every other operation only ever clears bits, so the invariant is
// preserved and `popcount` never over-counts the tail.
//
// All operations are exact integer compares/sums, so every ISA variant
// produces bit-identical results; the dispatch (common/cpu_dispatch.h)
// merely picks how fast they run. The scalar variants are the reference
// the SSE4.2/AVX2 ones are tested against.
#ifndef QARM_CORE_COUNT_KERNELS_H_
#define QARM_CORE_COUNT_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_dispatch.h"

namespace qarm {

// Number of 64-bit mask words covering `n` rows.
inline constexpr size_t MaskWords(size_t n) { return (n + 63) / 64; }

// Function table of one ISA's kernels. Obtain via ForIsa/Active; the
// pointers are never null (unsupported ISAs fall back to the scalar
// implementation, keeping results identical).
struct CountKernels {
  SimdIsa isa = SimdIsa::kScalar;

  // Sets bits [0, n), zeroes the tail of the last word.
  void (*fill_ones)(uint64_t* mask, size_t n);
  // mask &= (col[i] == value). ("and_eq" is a C++ alternative token, hence
  // the mask_ prefix on the compare ops.)
  void (*mask_eq)(uint64_t* mask, const int32_t* col, size_t n, int32_t value);
  // mask &= (col[i] != value)
  void (*mask_neq)(uint64_t* mask, const int32_t* col, size_t n,
                   int32_t value);
  // mask &= (lo <= col[i] && col[i] <= hi)
  void (*mask_range)(uint64_t* mask, const int32_t* col, size_t n, int32_t lo,
                     int32_t hi);
  // Number of set bits over rows [0, n) (tail bits are zero by invariant).
  uint64_t (*popcount)(const uint64_t* mask, size_t n);
  // idx[i] = sum_d cols[d][i] * strides[d], in wrapping int32 arithmetic.
  // Rows whose mask bit is clear may produce garbage (e.g. from missing
  // values); callers only read indices of set rows, which are in range by
  // construction.
  void (*flat_index)(int32_t* idx, const int32_t* const* cols,
                     const int32_t* strides, size_t dims, size_t n);
  // dst[i] += src[i] (counter-shard reduction).
  void (*add_u32)(uint32_t* dst, const uint32_t* src, size_t n);

  // Kernels of the given ISA (clamped to what this binary/CPU supports).
  static const CountKernels& ForIsa(SimdIsa isa);
  // Kernels of ActiveIsa().
  static const CountKernels& Active();
};

}  // namespace qarm

#endif  // QARM_CORE_COUNT_KERNELS_H_
