// Candidate generation for quantitative itemsets (Section 5.1): join L_{k-1}
// with itself on the first k-2 items with the *attributes* of the last two
// items differing (an itemset holds at most one item per attribute), then
// prune candidates with an infrequent (k-1)-subset. The Lemma 5 interest
// prune happens earlier, at item level (ItemCatalog).
//
// Both phases shard across a worker pool (num_threads > 1): the join over
// contiguous prefix runs (runs never split, so per-worker outputs
// concatenated in run order reproduce the serial candidate order exactly),
// the prune over candidate index ranges. Output is bit-identical to the
// serial path at any thread count.
#ifndef QARM_CORE_CANDIDATE_GEN_H_
#define QARM_CORE_CANDIDATE_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/frequent_items.h"

namespace qarm {

// A set of k-itemsets over item ids, stored flat (k consecutive ids per
// itemset) to keep large candidate sets compact.
class ItemsetSet {
 public:
  explicit ItemsetSet(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return k_ == 0 ? 0 : flat_.size() / k_; }
  bool empty() const { return flat_.empty(); }

  const int32_t* itemset(size_t i) const { return &flat_[i * k_]; }
  std::vector<int32_t> itemset_vector(size_t i) const {
    return std::vector<int32_t>(itemset(i), itemset(i) + k_);
  }

  void Append(const int32_t* ids) { flat_.insert(flat_.end(), ids, ids + k_); }
  void AppendVector(const std::vector<int32_t>& ids) { Append(ids.data()); }
  // Concatenates another set of the same k (shard reduction).
  void AppendAll(const ItemsetSet& other);
  void Reserve(size_t n) { flat_.reserve(n * k_); }

  // Lexicographic binary search; requires the set to be sorted (itemsets
  // are generated in lexicographic order by construction).
  bool Contains(const int32_t* ids) const;

 private:
  size_t k_;
  std::vector<int32_t> flat_;
};

// Observability for one candidate-generation call.
struct CandidateGenStats {
  size_t threads_used = 1;
  // Candidates out of the join phase (before the subset prune).
  size_t join_candidates = 0;
  double join_seconds = 0.0;
  double prune_seconds = 0.0;
  double seconds = 0.0;
};

// apriori-gen over quantitative items: returns C_k from L_{k-1}.
// `frequent` must be lexicographically sorted by item id; item ids are
// sorted by (attribute, lo, hi), so itemsets are attribute-sorted.
// `num_threads` follows the MinerOptions convention (0 = all hardware
// cores, 1 = serial); the result does not depend on it.
ItemsetSet GenerateCandidates(const ItemCatalog& catalog,
                              const ItemsetSet& frequent,
                              size_t num_threads = 1,
                              CandidateGenStats* stats = nullptr);

}  // namespace qarm

#endif  // QARM_CORE_CANDIDATE_GEN_H_
