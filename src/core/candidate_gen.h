// Candidate generation for quantitative itemsets (Section 5.1): join L_{k-1}
// with itself on the first k-2 items with the *attributes* of the last two
// items differing (an itemset holds at most one item per attribute), then
// prune candidates with an infrequent (k-1)-subset. The Lemma 5 interest
// prune happens earlier, at item level (ItemCatalog).
#ifndef QARM_CORE_CANDIDATE_GEN_H_
#define QARM_CORE_CANDIDATE_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/frequent_items.h"

namespace qarm {

// A set of k-itemsets over item ids, stored flat (k consecutive ids per
// itemset) to keep large candidate sets compact.
class ItemsetSet {
 public:
  explicit ItemsetSet(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return k_ == 0 ? 0 : flat_.size() / k_; }
  bool empty() const { return flat_.empty(); }

  const int32_t* itemset(size_t i) const { return &flat_[i * k_]; }
  std::vector<int32_t> itemset_vector(size_t i) const {
    return std::vector<int32_t>(itemset(i), itemset(i) + k_);
  }

  void Append(const int32_t* ids) { flat_.insert(flat_.end(), ids, ids + k_); }
  void AppendVector(const std::vector<int32_t>& ids) { Append(ids.data()); }
  void Reserve(size_t n) { flat_.reserve(n * k_); }

  // Lexicographic binary search; requires the set to be sorted (itemsets
  // are generated in lexicographic order by construction).
  bool Contains(const int32_t* ids) const;

 private:
  size_t k_;
  std::vector<int32_t> flat_;
};

// apriori-gen over quantitative items: returns C_k from L_{k-1}.
// `frequent` must be lexicographically sorted by item id; item ids are
// sorted by (attribute, lo, hi), so itemsets are attribute-sorted.
ItemsetSet GenerateCandidates(const ItemCatalog& catalog,
                              const ItemsetSet& frequent);

}  // namespace qarm

#endif  // QARM_CORE_CANDIDATE_GEN_H_
