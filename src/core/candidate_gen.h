// Candidate generation for quantitative itemsets (Section 5.1): join L_{k-1}
// with itself on the first k-2 items with the *attributes* of the last two
// items differing (an itemset holds at most one item per attribute), then
// prune candidates with an infrequent (k-1)-subset. The Lemma 5 interest
// prune happens earlier, at item level (ItemCatalog).
//
// Both phases shard across a worker pool (num_threads > 1): the join over
// contiguous prefix runs (runs never split, so per-worker outputs
// concatenated in run order reproduce the serial candidate order exactly),
// the prune over candidate index ranges. Output is bit-identical to the
// serial path at any thread count.
#ifndef QARM_CORE_CANDIDATE_GEN_H_
#define QARM_CORE_CANDIDATE_GEN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/frequent_items.h"

namespace qarm {

// A set of k-itemsets over item ids, stored flat (k consecutive ids per
// itemset) to keep large candidate sets compact.
class ItemsetSet {
 public:
  explicit ItemsetSet(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return k_ == 0 ? 0 : flat_.size() / k_; }
  bool empty() const { return flat_.empty(); }

  const int32_t* itemset(size_t i) const { return &flat_[i * k_]; }
  std::vector<int32_t> itemset_vector(size_t i) const {
    return std::vector<int32_t>(itemset(i), itemset(i) + k_);
  }

  void Append(const int32_t* ids) { flat_.insert(flat_.end(), ids, ids + k_); }
  void AppendVector(const std::vector<int32_t>& ids) { Append(ids.data()); }
  // Drops the itemsets but keeps the capacity (chunk buffer reuse).
  void Clear() { flat_.clear(); }
  // Concatenates another set of the same k (shard reduction).
  void AppendAll(const ItemsetSet& other);
  void Reserve(size_t n) { flat_.reserve(n * k_); }

  // Lexicographic binary search; requires the set to be sorted (itemsets
  // are generated in lexicographic order by construction).
  bool Contains(const int32_t* ids) const;

 private:
  size_t k_;
  std::vector<int32_t> flat_;
};

// Observability for one candidate-generation call.
struct CandidateGenStats {
  size_t threads_used = 1;
  // Candidates out of the join phase (before the subset prune).
  size_t join_candidates = 0;
  // Largest number of candidates resident at once. Equal to
  // join_candidates when the join materializes its output (k >= 3); bounded
  // by the chunk size when pass 2 streams the implicit cross product.
  size_t peak_materialized = 0;
  double join_seconds = 0.0;
  double prune_seconds = 0.0;
  double seconds = 0.0;
};

// A read-only sequence of k-itemset candidates in their serial generation
// order. Counting consumes candidates two ways — one sequential sweep to
// group them into super-candidates, then random-access decodes while
// building counters and collecting results — and this interface serves both
// without requiring the whole set to be resident. Pass 2's cross product
// (the largest candidate set of a run by far) streams in bounded chunks;
// every other pass wraps its materialized ItemsetSet for free.
class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  virtual size_t k() const = 0;
  virtual size_t size() const = 0;

  // Calls fn(first, chunk) for consecutive chunks covering all candidates
  // in order: `chunk` holds candidates [first, first + chunk.size()). The
  // chunk buffer is only valid during the call.
  virtual void ForEachChunk(
      const std::function<void(size_t first, const ItemsetSet& chunk)>& fn)
      const = 0;

  // Decodes candidate c into ids[0..k).
  virtual void Get(size_t c, int32_t* ids) const = 0;
};

// Non-owning CandidateStream over a materialized ItemsetSet (single chunk,
// zero copies). The set must outlive the view.
class ItemsetStreamView : public CandidateStream {
 public:
  explicit ItemsetStreamView(const ItemsetSet& set) : set_(set) {}

  size_t k() const override { return set_.k(); }
  size_t size() const override { return set_.size(); }
  void ForEachChunk(
      const std::function<void(size_t, const ItemsetSet&)>& fn) const override {
    if (!set_.empty()) fn(0, set_);
  }
  void Get(size_t c, int32_t* ids) const override {
    const int32_t* p = set_.itemset(c);
    for (size_t i = 0; i < set_.k(); ++i) ids[i] = p[i];
  }

 private:
  const ItemsetSet& set_;
};

// The pass-2 candidate set as a virtual cross product. L1 is always every
// catalog item, so C2 is exactly the pairs (i, j), i < j, with differing
// attributes — the same sequence GenerateCandidates' join emits, derived
// here from the catalog's per-attribute item ranges instead of being
// materialized (3.4M candidates on the financial benchmark was the largest
// single allocation of a run). Chunks materialize at most `chunk_rows`
// candidates at a time; Get is a binary search over per-outer-item prefix
// sums. The catalog must outlive the stream.
class ImplicitPairStream : public CandidateStream {
 public:
  static constexpr size_t kDefaultChunkRows = 65536;

  explicit ImplicitPairStream(const ItemCatalog& catalog,
                              size_t chunk_rows = kDefaultChunkRows);

  size_t k() const override { return 2; }
  size_t size() const override { return total_; }
  void ForEachChunk(const std::function<void(size_t, const ItemsetSet&)>& fn)
      const override;
  void Get(size_t c, int32_t* ids) const override;

 private:
  // partner_begin_[i]: first partner of outer item i (the end of i's
  // attribute's item range — ids are sorted by attribute, so everything
  // from there on differs in attribute). prefix_[i]: pairs with outer < i.
  std::vector<int32_t> partner_begin_;
  std::vector<uint64_t> prefix_;
  size_t total_ = 0;
  size_t chunk_rows_;
};

// apriori-gen over quantitative items: returns C_k from L_{k-1}.
// `frequent` must be lexicographically sorted by item id; item ids are
// sorted by (attribute, lo, hi), so itemsets are attribute-sorted.
// `num_threads` follows the MinerOptions convention (0 = all hardware
// cores, 1 = serial); the result does not depend on it.
ItemsetSet GenerateCandidates(const ItemCatalog& catalog,
                              const ItemsetSet& frequent,
                              size_t num_threads = 1,
                              CandidateGenStats* stats = nullptr);

}  // namespace qarm

#endif  // QARM_CORE_CANDIDATE_GEN_H_
