// The final "greater-than-expected-value" interest measure of Section 4.
//
// A rule is interesting if it has no ancestors (generalizations) in the
// output, or if it is R-interesting with respect to each of its close
// ancestors among its interesting ancestors. R-interestingness of a rule
// w.r.t. an ancestor requires the support (and/or confidence, per the user's
// mode) to be at least R times the expectation derived from the ancestor,
// AND the combined itemset X ∪ Y to be R-interesting — which in turn checks
// every frequent specialization: subtracting the specialization must leave a
// difference that still beats R times its expected support (this is what
// rejects the "Decoy" interval of Figure 6).
#ifndef QARM_CORE_INTEREST_H_
#define QARM_CORE_INTEREST_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/frequent_items.h"
#include "core/item.h"
#include "core/options.h"
#include "core/rules.h"
#include "mining/apriori.h"

namespace qarm {

// Evaluates interest flags over a set of rules. The evaluator indexes the
// frequent itemsets (for the specialization-difference test) and uses the
// catalog's marginals for expected values.
class InterestEvaluator {
 public:
  // `catalog` and `frequent` must outlive the evaluator. `frequent` holds
  // item-id itemsets as produced by MineFrequentItemsets.
  InterestEvaluator(const ItemCatalog* catalog,
                    const std::vector<FrequentItemset>* frequent,
                    double interest_level, InterestMode mode);

  // Sets rule.interesting on every rule: most-general rules first, each rule
  // tested against its close ancestors among the already-interesting ones.
  //
  // Rules only interact within their (antecedent attributes, consequent
  // attributes) group — an ancestor must match the attribute split exactly —
  // so with `num_threads > 1` (0 = all hardware cores) the groups are
  // evaluated concurrently on a worker pool. Every worker reads the same
  // precomputed wildcard index (built once at construction, immutable
  // thereafter) and writes flags only for its own group's rules, so the
  // flags are identical at any thread count. `threads_used`, when non-null,
  // receives the parallelism actually applied (1 when there was nothing to
  // shard).
  void EvaluateRules(std::vector<QuantRule>* rules, size_t num_threads = 1,
                     size_t* threads_used = nullptr) const;

  // The final itemset measure (exposed for tests): support(z) must be at
  // least R times the expected support based on ẑ, and for every frequent
  // specialization z' of z whose difference z - z' is a box, the difference
  // must also be R-interesting w.r.t. ẑ.
  bool IsItemsetRInteresting(const RangeItemset& z, uint64_t z_count,
                             const RangeItemset& z_hat,
                             uint64_t z_hat_count) const;

  // Rule-level R-interestingness w.r.t. one ancestor (exposed for tests).
  bool IsRuleRInterestingWrt(const QuantRule& rule,
                             const QuantRule& ancestor) const;

 private:
  // Serializes an itemset with the range at position `wildcard` masked out;
  // two itemsets share a key iff they are identical except at that position.
  static std::vector<int32_t> WildcardKey(const RangeItemset& items,
                                          size_t wildcard);

  const ItemCatalog* catalog_;
  double level_;
  InterestMode mode_;
  size_t num_records_;

  struct DecodedItemset {
    RangeItemset items;
    uint64_t count;
  };
  std::vector<DecodedItemset> decoded_;
  // For each frequent itemset and each item position, an entry keyed by the
  // itemset-with-that-position-wildcarded. The specialization-difference
  // test only involves specializations differing in exactly one attribute
  // (otherwise the difference is not a box), so this index answers it in
  // O(items) lookups. Built once at construction; EvaluateRules workers
  // share it read-only. Hash: the unified FNV-1a+splitmix64 of
  // common/hash.h (shared with the counting pass's GroupKeyHash).
  std::unordered_map<std::vector<int32_t>, std::vector<size_t>,
                     Int32VectorHash>
      by_wildcard_;
};

}  // namespace qarm

#endif  // QARM_CORE_INTEREST_H_
