#include "core/miner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/interest.h"
#include "core/mining_checkpoint.h"
#include "partition/partial_completeness.h"
#include "storage/fault_injection.h"

namespace qarm {

std::vector<QuantRule> MiningResult::InterestingRules() const {
  std::vector<QuantRule> out;
  for (const QuantRule& rule : rules) {
    if (rule.interesting) out.push_back(rule);
  }
  return out;
}

QuantitativeRuleMiner::QuantitativeRuleMiner(const MinerOptions& options)
    : options_(options) {
  // A checkpoint without full candidate counts cannot seed an incremental
  // run, which is the whole point of append mode.
  if (options_.append_mode) options_.collect_candidate_counts = true;
}

Status QuantitativeRuleMiner::ValidateOptions() const {
  return options_.Validate();
}

Result<MiningResult> QuantitativeRuleMiner::Mine(const Table& table) const {
  QARM_RETURN_NOT_OK(ValidateOptions());
  Timer timer;
  MapOptions map_options;
  map_options.partial_completeness = options_.partial_completeness;
  map_options.minsup = options_.minsup;
  map_options.method = options_.partition_method;
  map_options.num_intervals_override = options_.num_intervals_override;
  map_options.max_quantitative_per_rule = options_.max_quantitative_per_rule;
  map_options.taxonomies = options_.taxonomies;
  QARM_ASSIGN_OR_RETURN(MappedTable mapped, MapTable(table, map_options));
  double map_seconds = timer.ElapsedSeconds();
  QARM_ASSIGN_OR_RETURN(MiningResult result, MineMapped(std::move(mapped)));
  result.stats.map_seconds = map_seconds;
  result.stats.total_seconds += map_seconds;
  return result;
}

Result<MiningResult> QuantitativeRuleMiner::MineMapped(
    MappedTable mapped) const {
  QARM_RETURN_NOT_OK(ValidateOptions());
  MiningResult result(std::move(mapped));
  // The scan source wraps the table owned by the result, so the reference
  // stays valid for the whole run.
  const MappedTableSource source(
      result.mapped, PickBlockRows(result.mapped.num_rows(),
                                   ResolveNumThreads(options_.num_threads),
                                   options_.stream_block_rows));
  QARM_RETURN_NOT_OK(MineWithSource(source, &result));
  return result;
}

Result<MiningResult> QuantitativeRuleMiner::MineStreamed(
    const RecordSource& source) const {
  QARM_RETURN_NOT_OK(ValidateOptions());
  // The result's table holds only the decode metadata; the records stay in
  // the source and stream through each pass.
  MiningResult result(MappedTable(source.attributes(), /*num_rows=*/0));
  QARM_RETURN_NOT_OK(MineWithSource(source, &result));
  return result;
}

Result<MiningResult> QuantitativeRuleMiner::MineStreamed(
    const RecordSource& source, const MiningHooks& hooks) const {
  QARM_RETURN_NOT_OK(ValidateOptions());
  MiningResult result(MappedTable(source.attributes(), /*num_rows=*/0));
  QARM_RETURN_NOT_OK(MineWithSource(source, &result, &hooks));
  return result;
}

Status QuantitativeRuleMiner::MineWithSource(const RecordSource& base_source,
                                             MiningResult* result,
                                             const MiningHooks* hooks) const {
  Timer total_timer;
  Timer timer;
  MiningStats& stats = result->stats;

  // Deterministic fault injection, when requested, wraps the source for the
  // whole run — the pass-1 catalog scan and every counting pass read
  // through it.
  std::unique_ptr<FaultInjectingRecordSource> faulty;
  const RecordSource* source_ptr = &base_source;
  if (!options_.inject_faults_spec.empty()) {
    QARM_ASSIGN_OR_RETURN(FaultInjectionConfig fault_config,
                          ParseFaultSpec(options_.inject_faults_spec));
    faulty = std::make_unique<FaultInjectingRecordSource>(base_source,
                                                          fault_config);
    source_ptr = faulty.get();
  }
  const RecordSource& source = *source_ptr;

  const size_t num_rows = source.num_rows();
  stats.num_records = num_rows;
  stats.num_threads = ResolveNumThreads(options_.num_threads);

  const bool checkpointing = !options_.checkpoint_path.empty();
  stats.checkpoint.enabled = checkpointing;
  const uint64_t fingerprint =
      checkpointing ? ComputeMiningFingerprint(options_, source) : 0;
  const uint64_t options_fp =
      checkpointing ? ComputeMiningOptionsFingerprint(options_, source) : 0;
  // Every checkpoint this run writes carries the incremental-base identity
  // (zero for non-QBT runs) so a later `mine --append` can validate it.
  auto stamp_base = [&](CheckpointState* state) {
    state->options_fingerprint = options_fp;
    if (hooks != nullptr) {
      state->base_num_blocks = hooks->checkpoint_base.num_blocks;
      state->base_index_crc = hooks->checkpoint_base.index_crc;
    }
  };

  // Step 3a: frequent items — restored from a valid checkpoint of this
  // exact run when one exists, otherwise built by the pass-1 scan. Any
  // problem with the checkpoint (corrupt, truncated, different run) only
  // costs the resume: mining restarts from scratch with a warning.
  std::optional<ItemCatalog> catalog;
  FrequentItemsetResult resume_progress;
  bool resumed = false;
  if (checkpointing) {
    Result<CheckpointState> loaded =
        ReadCheckpoint(options_.checkpoint_path);
    if (loaded.ok()) {
      if (loaded->fingerprint != fingerprint) {
        if (options_.append_mode &&
            (loaded->flags & kCheckpointFlagComplete) != 0) {
          // Expected in append mode: the complete checkpoint of the
          // pre-append run is the incremental *base* (consumed by
          // MineIncremental's hooks), not a resume point for this run.
          QARM_LOG(Info) << "append mode: checkpoint '"
                         << options_.checkpoint_path
                         << "' is a completed prior run; mining the grown "
                            "file fresh";
        } else {
          QARM_LOG(Warning)
              << "ignoring checkpoint '" << options_.checkpoint_path
              << "': it belongs to a different run (options or data "
                 "changed); restarting from scratch";
        }
      } else if (options_.append_mode &&
                 (loaded->flags & kCheckpointFlagComplete) != 0) {
        // Same fingerprint AND complete: nothing was appended since the
        // checkpointed run. Re-mine rather than "resume" into a no-op —
        // the caller asked for a mine, and the result must not depend on
        // stale terminal state.
        QARM_LOG(Info) << "append mode: checkpoint '"
                       << options_.checkpoint_path
                       << "' already covers this data; re-mining";
      } else {
        Result<ItemCatalog> restored =
            ItemCatalog::Restore(source, loaded->catalog);
        Status progress_status =
            restored.ok() ? RestoreCheckpointProgress(*loaded, *restored,
                                                      &resume_progress)
                          : restored.status();
        if (progress_status.ok()) {
          catalog.emplace(std::move(restored).value());
          resumed = true;
          stats.checkpoint.resumed = true;
          stats.checkpoint.resumed_passes = resume_progress.passes.size();
          QARM_LOG(Info) << "resuming from checkpoint '"
                         << options_.checkpoint_path << "' after pass "
                         << resume_progress.passes.back().k;
        } else {
          QARM_LOG(Warning)
              << "ignoring checkpoint '" << options_.checkpoint_path
              << "': " << progress_status.ToString()
              << "; restarting from scratch";
        }
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      QARM_LOG(Warning) << "ignoring checkpoint '"
                        << options_.checkpoint_path
                        << "': " << loaded.status().ToString()
                        << "; restarting from scratch";
    }
  }
  if (!catalog.has_value()) {
    if (hooks != nullptr && hooks->scan_value_counts) {
      // Distributed pass 1: the workers scan their shards, the hook hands
      // back the merged value counts, and only the derivation runs here.
      QARM_ASSIGN_OR_RETURN(std::vector<std::vector<uint64_t>> value_counts,
                            hooks->scan_value_counts(&stats.pass1_io));
      QARM_ASSIGN_OR_RETURN(ItemCatalog built,
                            ItemCatalog::BuildFromValueCounts(
                                source, options_, std::move(value_counts)));
      catalog.emplace(std::move(built));
    } else {
      QARM_ASSIGN_OR_RETURN(
          ItemCatalog built,
          ItemCatalog::Build(source, options_, &stats.pass1_io));
      catalog.emplace(std::move(built));
    }
  }
  if (hooks != nullptr && hooks->publish_catalog) {
    QARM_RETURN_NOT_OK(hooks->publish_catalog(*catalog, resumed));
  }
  stats.num_frequent_items = catalog->num_items();
  stats.items_pruned_by_interest = catalog->items_pruned_by_interest();
  stats.pass1_seconds = timer.ElapsedSeconds();

  // Achieved partial completeness (Equation 1) from the realized partitions.
  {
    size_t n_quant = options_.max_quantitative_per_rule > 0
                         ? options_.max_quantitative_per_rule
                         : result->mapped.num_quantitative();
    double max_support = 0.0;
    for (size_t a = 0; a < source.num_attributes(); ++a) {
      const MappedAttribute& attr = source.attribute(a);
      if (attr.kind != AttributeKind::kQuantitative || !attr.partitioned) {
        continue;
      }
      const std::vector<uint64_t>& counts = catalog->value_counts(a);
      std::vector<size_t> size_counts(counts.begin(), counts.end());
      max_support = std::max(
          max_support, MaxMultiValueIntervalSupport(attr.intervals,
                                                    size_counts,
                                                    num_rows));
    }
    stats.achieved_partial_completeness =
        max_support == 0.0
            ? 1.0
            : AchievedPartialCompleteness(max_support, n_quant,
                                          options_.minsup);
  }

  // Step 3b: frequent itemsets, checkpointing at pass boundaries.
  timer.Reset();
  AfterPassFn after_pass;
  if (checkpointing || options_.stop_after_pass > 0 ||
      options_.cancel_flag != nullptr) {
    after_pass = [&](const FrequentItemsetResult& progress) -> Status {
      const size_t k = progress.passes.back().k;
      const bool cancelled =
          options_.cancel_flag != nullptr &&
          options_.cancel_flag->load(std::memory_order_relaxed);
      const bool stop_here =
          options_.stop_after_pass > 0 && k >= options_.stop_after_pass;
      // Cancellation still checkpoints first, so an interrupted run loses
      // no completed pass.
      if (checkpointing &&
          (cancelled || stop_here ||
           k % options_.checkpoint_every_pass == 0)) {
        Timer write_timer;
        CheckpointState state =
            BuildCheckpointState(fingerprint, source, *catalog, progress);
        stamp_base(&state);
        uint64_t bytes = 0;
        const Status written =
            WriteCheckpoint(state, options_.checkpoint_path, &bytes);
        if (written.ok()) {
          ++stats.checkpoint.checkpoints_written;
          stats.checkpoint.last_checkpoint_bytes = bytes;
        } else {
          // Graceful degradation: a failed checkpoint write must not kill
          // a healthy mining run — it only loses this resume point.
          QARM_LOG(Warning)
              << "checkpoint write to '" << options_.checkpoint_path
              << "' failed: " << written.ToString()
              << "; mining continues without it";
        }
        stats.checkpoint.write_seconds += write_timer.ElapsedSeconds();
      }
      if (cancelled) {
        return Status::Cancelled(
            StrFormat("mining interrupted after pass %zu", k));
      }
      if (stop_here) {
        return Status::Cancelled(
            StrFormat("mining stopped after pass %zu (stop_after_pass)",
                      k));
      }
      return Status::OK();
    };
  }
  QARM_ASSIGN_OR_RETURN(
      FrequentItemsetResult frequent,
      MineFrequentItemsets(source, *catalog, options_,
                           resumed ? &resume_progress : nullptr, after_pass,
                           hooks != nullptr ? hooks->count_supports
                                            : CountSupportsFn()));
  stats.passes = frequent.passes;
  stats.itemset_seconds = timer.ElapsedSeconds();
  for (const PassStats& pass : frequent.passes) {
    stats.candgen_seconds += pass.candgen.seconds;
    stats.candgen_threads_used =
        std::max(stats.candgen_threads_used, pass.candgen.threads_used);
  }

  // Step 4: rules.
  timer.Reset();
  result->rules =
      GenerateQuantRules(frequent.itemsets, *catalog, num_rows,
                         options_.minconf, options_.num_threads,
                         &stats.rulegen_threads_used);
  stats.num_rules = result->rules.size();
  stats.rulegen_seconds = timer.ElapsedSeconds();

  // Step 5: interest.
  timer.Reset();
  if (options_.interest_level > 0.0) {
    InterestEvaluator evaluator(&*catalog, &frequent.itemsets,
                                options_.interest_level,
                                options_.interest_mode);
    evaluator.EvaluateRules(&result->rules, options_.num_threads,
                            &stats.interest_threads_used);
  }
  stats.num_interesting_rules = 0;
  for (const QuantRule& rule : result->rules) {
    if (rule.interesting) ++stats.num_interesting_rules;
  }
  stats.interest_seconds = timer.ElapsedSeconds();

  // Decode the frequent itemsets for the caller. Each decode is independent
  // and index-addressed, so sharding the range cannot change the output.
  result->frequent_itemsets.resize(frequent.itemsets.size());
  const double n = static_cast<double>(num_rows);
  auto decode_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const FrequentItemset& f = frequent.itemsets[i];
      FrequentRangeItemset& decoded = result->frequent_itemsets[i];
      decoded.items = catalog->Decode(f.items);
      decoded.count = f.count;
      decoded.support = n > 0 ? static_cast<double>(f.count) / n : 0.0;
    }
  };
  constexpr size_t kMinParallelDecodes = 512;
  const size_t decode_threads =
      frequent.itemsets.size() >= kMinParallelDecodes ? stats.num_threads : 1;
  if (decode_threads <= 1) {
    decode_range(0, frequent.itemsets.size());
  } else {
    const std::vector<IndexRange> shards =
        SplitRange(frequent.itemsets.size(), decode_threads);
    ThreadPool pool(decode_threads);
    pool.ParallelFor(shards.size(), [&](size_t s) {
      decode_range(shards[s].begin, shards[s].end);
    });
  }

  // The run completed. Ordinarily the checkpoint has served its purpose,
  // and leaving it behind would make a future run with the same flags
  // "resume" into an instant no-op instead of mining fresh data. In append
  // mode the opposite holds: the final state — flagged complete, with full
  // per-candidate counts — IS the product that lets the next run mine only
  // the appended blocks, so it is written out instead of deleted.
  if (checkpointing) {
    if (options_.append_mode) {
      Timer write_timer;
      CheckpointState state =
          BuildCheckpointState(fingerprint, source, *catalog, frequent);
      state.flags |= kCheckpointFlagComplete;
      stamp_base(&state);
      uint64_t bytes = 0;
      const Status written =
          WriteCheckpoint(state, options_.checkpoint_path, &bytes);
      if (written.ok()) {
        ++stats.checkpoint.checkpoints_written;
        stats.checkpoint.last_checkpoint_bytes = bytes;
      } else {
        QARM_LOG(Warning)
            << "final checkpoint write to '" << options_.checkpoint_path
            << "' failed: " << written.ToString()
            << "; the next run cannot mine incrementally";
      }
      stats.checkpoint.write_seconds += write_timer.ElapsedSeconds();
    } else {
      std::remove(options_.checkpoint_path.c_str());
    }
  }

  stats.total_seconds = total_timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace qarm
