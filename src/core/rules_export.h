// Converts a mining run's output into the storage-neutral StoredRuleSet
// that WriteRuleSet serializes as a QRS file — the hand-off from mining
// time to serving time (`qarm mine --output-rules` -> `qarm serve`).
//
// Beyond a field-for-field copy, the exporter computes each rule's lift
// (confidence / support(consequent)) from the frequent-itemset supports:
// every consequent is a subset of a frequent itemset and hence, by
// downward closure, usually frequent itself; when its support is absent
// (e.g. pruned by a range cap) the lift is stored as 0 = unknown.
#ifndef QARM_CORE_RULES_EXPORT_H_
#define QARM_CORE_RULES_EXPORT_H_

#include "core/miner.h"
#include "storage/rules_format.h"

namespace qarm {

// Builds the rule set `result` describes, carrying the decode metadata of
// `result.mapped`, the mined rules with their measures, and the mining
// parameters from `options`.
StoredRuleSet ExportRuleSet(const MiningResult& result,
                            const MinerOptions& options);

}  // namespace qarm

#endif  // QARM_CORE_RULES_EXPORT_H_
