// Support counting for candidate quantitative itemsets (Section 5.2).
//
// Candidates are partitioned into super-candidates: groups sharing the same
// attributes and the same categorical values. A record first matches
// super-candidates through the [AS94] hash tree on the categorical items;
// the record's quantitative values then form a point that is counted into
// the super-candidate's n-dimensional array (or, when the array would be
// too large, queried against an R*-tree holding the candidates'
// rectangles).
#ifndef QARM_CORE_SUPPORT_COUNTING_H_
#define QARM_CORE_SUPPORT_COUNTING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cpu_dispatch.h"
#include "common/status.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/options.h"
#include "partition/mapped_table.h"
#include "storage/record_source.h"

namespace qarm {

// Observability counters for one counting pass.
struct CountingStats {
  size_t num_super_candidates = 0;
  size_t num_array_counters = 0;  // super-candidates counted via NDimArray
  size_t num_tree_counters = 0;   // via R*-tree
  size_t num_direct = 0;          // purely categorical super-candidates
  // Graceful degradation: super-candidates whose R*-tree no longer fit the
  // counter memory budget and fell back to a linear scan of their member
  // rectangles (slower, near-zero memory). The pass logs one warning.
  size_t num_degraded = 0;
  // Array super-candidates whose grid stayed shared across scan workers
  // (atomic increments) because per-thread replicas would have blown the
  // replication budget. Always 0 on a serial scan.
  size_t num_atomic_shared = 0;

  // Threads that actually scanned (<= the resolved option: capped by the
  // number of blocks of the scanned source).
  size_t threads_used = 1;

  // The SIMD instruction set the pass's kernels dispatched to (detection
  // clamped by QARM_FORCE_ISA). kScalar means the original row-at-a-time
  // scan ran; any other ISA selects the block-kernel path for eligible
  // super-candidates. Results are bit-identical either way.
  SimdIsa isa = SimdIsa::kScalar;
  // Super-candidates counted by the block-kernel path vs the row-at-a-time
  // hash-tree probe path this pass.
  size_t num_kernel_groups = 0;
  size_t num_hash_groups = 0;

  // I/O performed by this pass's scan (zero for in-memory sources).
  ScanIoStats io;
  // Bytes of the primary counting structures (grids + tree estimates).
  uint64_t counter_bytes = 0;
  // Extra bytes of per-thread grid replicas allocated for the scan.
  uint64_t replicated_bytes = 0;

  // Per-phase wall times of the pass.
  double group_seconds = 0.0;   // grouping candidates into super-candidates
  double build_seconds = 0.0;   // counting structures + hash tree
  double scan_seconds = 0.0;    // the (possibly sharded) pass over the rows
  double reduce_seconds = 0.0;  // merging thread counters + collecting counts
};

// Hash for super-candidate group keys ([quantitative attrs..., -1,
// categorical item ids...]). Delegates to the shared FNV-1a+splitmix64 of
// common/hash.h: the finalizer keeps the sparse, small-integer inputs —
// attribute indices and item ids draw from the same small range — spread
// over the whole size_t range instead of clustering in the low bits.
struct GroupKeyHash {
  size_t operator()(const std::vector<int32_t>& v) const;
};

// Counts the support of every candidate in one block-streamed pass over
// `source`. Returns counts parallel to `candidates` (uint32: a count is
// bounded by the record count). Fails only when a block read fails (e.g. a
// QBT checksum mismatch). Workers shard over contiguous *block* ranges, so
// a larger-than-RAM source streams through with memory bounded by the
// blocks in flight plus the counting structures. The candidates arrive as
// a CandidateStream: grouping consumes one sequential chunked sweep, and
// only member decodes touch individual candidates afterwards, so pass 2's
// implicit cross product never materializes.
Result<std::vector<uint32_t>> CountSupports(const RecordSource& source,
                                            const ItemCatalog& catalog,
                                            const CandidateStream& candidates,
                                            const MinerOptions& options,
                                            CountingStats* stats);

// Convenience overload for materialized candidate sets (tests, k >= 3).
Result<std::vector<uint32_t>> CountSupports(const RecordSource& source,
                                            const ItemCatalog& catalog,
                                            const ItemsetSet& candidates,
                                            const MinerOptions& options,
                                            CountingStats* stats);

// Same over an in-memory table (reads cannot fail).
std::vector<uint32_t> CountSupports(const MappedTable& table,
                                    const ItemCatalog& catalog,
                                    const ItemsetSet& candidates,
                                    const MinerOptions& options,
                                    CountingStats* stats);

}  // namespace qarm

#endif  // QARM_CORE_SUPPORT_COUNTING_H_
