// Support counting for candidate quantitative itemsets (Section 5.2).
//
// Candidates are partitioned into super-candidates: groups sharing the same
// attributes and the same categorical values. A record first matches
// super-candidates through the [AS94] hash tree on the categorical items;
// the record's quantitative values then form a point that is counted into
// the super-candidate's n-dimensional array (or, when the array would be
// too large, queried against an R*-tree holding the candidates'
// rectangles).
#ifndef QARM_CORE_SUPPORT_COUNTING_H_
#define QARM_CORE_SUPPORT_COUNTING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/options.h"
#include "partition/mapped_table.h"

namespace qarm {

// Observability counters for one counting pass.
struct CountingStats {
  size_t num_super_candidates = 0;
  size_t num_array_counters = 0;  // super-candidates counted via NDimArray
  size_t num_tree_counters = 0;   // via R*-tree
  size_t num_direct = 0;          // purely categorical super-candidates
};

// Counts the support of every candidate in one pass over `table`.
// Returns counts parallel to `candidates` (uint32: a count is bounded by the
// record count).
std::vector<uint32_t> CountSupports(const MappedTable& table,
                                    const ItemCatalog& catalog,
                                    const ItemsetSet& candidates,
                                    const MinerOptions& options,
                                    CountingStats* stats);

}  // namespace qarm

#endif  // QARM_CORE_SUPPORT_COUNTING_H_
