// Pass 1 of the mining algorithm (step 3 of Section 2.1): find the support
// of every attribute value, combine adjacent quantitative values/intervals
// into ranges while their joint support stays within max-support, and emit
// the frequent items. Also applies the Lemma 5 interest prune (quantitative
// items with support above 1/R can never be R-interesting on support).
#ifndef QARM_CORE_FREQUENT_ITEMS_H_
#define QARM_CORE_FREQUENT_ITEMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/item.h"
#include "core/options.h"
#include "partition/mapped_table.h"
#include "storage/checkpoint_format.h"
#include "storage/record_source.h"

namespace qarm {

// Immutable catalog of the frequent items plus the per-attribute marginal
// value counts (the marginals also serve the Section 4 expected-value
// formulas).
class ItemCatalog {
 public:
  // Builds the catalog in one block-streamed scan of `source`. Fails only
  // when a block read fails (e.g. a QBT checksum mismatch). `io`, when
  // non-null, receives the I/O performed by this scan.
  static Result<ItemCatalog> Build(const RecordSource& source,
                                   const MinerOptions& options,
                                   ScanIoStats* io = nullptr);

  // Builds the catalog in one scan of an in-memory `table` (reads cannot
  // fail).
  static ItemCatalog Build(const MappedTable& table,
                           const MinerOptions& options);

  // The two halves of Build, split so distributed mining can run them on
  // different processes: each worker scans its block range's value counts
  // (ScanValueCounts over a BlockRangeSource), the coordinator sums the
  // per-shard counts in worker order and derives the catalog once.
  //
  // ScanValueCounts returns one count vector per attribute (indexed by
  // mapped value), sharded across `num_threads` workers.
  static Result<std::vector<std::vector<uint64_t>>> ScanValueCounts(
      const RecordSource& source, size_t num_threads,
      ScanIoStats* io = nullptr);

  // Derives the catalog from already-merged value counts. `source` supplies
  // the schema and total row count (min-support thresholds come from the
  // full table, not a shard). Rejects counts whose shape does not match the
  // source. Consumes `value_counts`.
  static Result<ItemCatalog> BuildFromValueCounts(
      const RecordSource& source, const MinerOptions& options,
      std::vector<std::vector<uint64_t>> value_counts);

  // Checkpoint support: Snapshot captures the catalog's full state as the
  // storage-neutral checkpoint structure; Restore rebuilds a catalog from
  // that structure without re-scanning the data (the derived prefix sums
  // and categorical lookups are recomputed from the saved value counts and
  // `source`'s attribute schema). Restore rejects a snapshot whose shape
  // does not match `source`.
  CheckpointCatalog Snapshot() const;
  static Result<ItemCatalog> Restore(const RecordSource& source,
                                     const CheckpointCatalog& saved);

  size_t num_items() const { return items_.size(); }
  const RangeItem& item(int32_t id) const {
    return items_[static_cast<size_t>(id)];
  }
  uint64_t item_count(int32_t id) const {
    return item_counts_[static_cast<size_t>(id)];
  }
  size_t num_records() const { return num_records_; }

  // Converts an itemset of item ids into explicit ranges.
  RangeItemset Decode(const std::vector<int32_t>& ids) const;

  // Item id of the categorical item <attr, value, value>, or -1 when that
  // value is not a frequent item.
  int32_t CategoricalItemId(size_t attr, int32_t value) const;

  // Marginal support count / fraction of an arbitrary range of `attr`
  // (mapped domain, clipped).
  uint64_t RangeCount(int32_t attr, int32_t lo, int32_t hi) const;
  double RangeSupport(int32_t attr, int32_t lo, int32_t hi) const;

  // Raw per-value counts of one attribute (partial-completeness reporting).
  const std::vector<uint64_t>& value_counts(size_t attr) const {
    return value_counts_[attr];
  }

  // Number of quantitative items dropped by the Lemma 5 prune.
  size_t items_pruned_by_interest() const {
    return items_pruned_by_interest_;
  }

 private:
  ItemCatalog() = default;

  std::vector<RangeItem> items_;        // sorted by (attr, lo, hi)
  std::vector<uint64_t> item_counts_;   // parallel to items_
  size_t num_records_ = 0;
  size_t items_pruned_by_interest_ = 0;

  // Per attribute: per-value counts and inclusive prefix sums.
  std::vector<std::vector<uint64_t>> value_counts_;
  std::vector<std::vector<uint64_t>> prefix_counts_;

  // Per categorical attribute: value -> item id (-1 if not frequent).
  std::vector<std::vector<int32_t>> categorical_item_ids_;
};

}  // namespace qarm

#endif  // QARM_CORE_FREQUENT_ITEMS_H_
