// Machine-readable exports of mining results (JSON and CSV), for piping
// qarm output into downstream tooling. No external dependencies; the JSON
// is hand-emitted and escaped.
#ifndef QARM_CORE_REPORT_H_
#define QARM_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/miner.h"
#include "core/rules.h"

namespace qarm {

// One rule as a JSON object:
//   {"antecedent":[{"attribute":"Age","kind":"quantitative",
//                   "lo":23,"hi":29,"display":"23..29"}, ...],
//    "consequent":[...],
//    "support":0.6,"confidence":1.0,"count":3,"interesting":true}
// For quantitative items lo/hi are the raw bounds; for categorical items
// they are omitted and "value" carries the label (taxonomy interior nodes
// report the node name).
std::string RuleToJson(const QuantRule& rule, const MappedTable& mapped);

// The whole result: {"num_records":..,"stats":{..},"rules":[..]}.
// With `interesting_only`, rules not flagged interesting are skipped.
std::string MiningResultToJson(const MiningResult& result,
                               bool interesting_only = false);

// Run statistics as a JSON object.
std::string StatsToJson(const MiningStats& stats);

// Rules as CSV: antecedent,consequent,support,confidence,count,interesting.
// Sides are rendered with the human-readable item syntax; fields containing
// commas are double-quoted.
std::string RulesToCsv(const std::vector<QuantRule>& rules,
                       const MappedTable& mapped);

// Escapes a string for embedding in a JSON document (quotes included).
std::string JsonEscape(const std::string& s);

}  // namespace qarm

#endif  // QARM_CORE_REPORT_H_
