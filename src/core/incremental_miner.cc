#include "core/incremental_miner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/mining_checkpoint.h"
#include "core/support_counting.h"
#include "storage/checkpoint_format.h"
#include "storage/fault_injection.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"

namespace qarm {
namespace {

// The frequency threshold MineFrequentItemsets applies (kept in lockstep
// with apriori_quant.cc: the frontier-divergence test below must use the
// exact same rounding).
uint64_t MinCount(double minsup, uint64_t num_rows) {
  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(minsup * static_cast<double>(num_rows) - 1e-9));
  return min_count == 0 ? 1 : min_count;
}

// Everything the counting hooks share across passes.
struct IncrementalState {
  const CheckpointState* base = nullptr;
  const RecordSource* source = nullptr;  // full file (fault-wrapped)
  const MinerOptions* options = nullptr;
  size_t base_blocks = 0;
  size_t total_blocks = 0;
  uint64_t base_min_count = 0;
  uint64_t cur_min_count = 0;

  const ItemCatalog* catalog = nullptr;
  // Pass k's counts can merge base + delta only while the frequent-itemset
  // frontier still matches the base run's (catalog match implies the L1 /
  // C2 match; each merged pass then re-validates the next level).
  bool frontier_matches = false;
  bool logged_divergence = false;
  size_t next_k = 2;  // counting passes arrive strictly as k = 2, 3, ...

  size_t passes_merged = 0;
  size_t passes_rescanned = 0;
};

}  // namespace

Result<MiningResult> MineIncremental(const std::string& qbt_path,
                                     const MinerOptions& options,
                                     IncrementalDecision* decision,
                                     const FullMineFn& full_mine) {
  MinerOptions opts = options;
  opts.append_mode = true;
  opts.collect_candidate_counts = true;
  QARM_RETURN_NOT_OK(opts.Validate());

  IncrementalDecision local_decision;
  IncrementalDecision& dec = decision != nullptr ? *decision : local_decision;
  dec = IncrementalDecision{};

  // An append interrupted between writing its suffix and committing the
  // new row count leaves trailing uncommitted bytes; roll those back
  // before opening (a healthy file is untouched).
  Result<std::unique_ptr<QbtFileSource>> opened = QbtFileSource::Open(qbt_path);
  if (!opened.ok()) {
    QARM_RETURN_NOT_OK(RecoverQbt(qbt_path));
    opened = QbtFileSource::Open(qbt_path);
  }
  QARM_RETURN_NOT_OK(opened.status());
  std::unique_ptr<QbtFileSource> qbt = std::move(opened).value();

  const size_t total_blocks = qbt->num_blocks();
  const uint64_t total_rows = qbt->num_rows();
  dec.delta_blocks = total_blocks;
  dec.delta_rows = total_rows;

  // Fallback routes: a full (or resumed) mine of the grown file, still in
  // append mode so it leaves a fresh complete checkpoint behind. The
  // distributed path is the caller's when workers were requested.
  const auto run_full = [&]() -> Result<MiningResult> {
    if (opts.num_workers > 1 && full_mine != nullptr) {
      return full_mine(opts);
    }
    MiningHooks hooks;
    hooks.checkpoint_base.num_blocks = total_blocks;
    hooks.checkpoint_base.index_crc = qbt->reader().IndexPrefixCrc(total_blocks);
    const QuantitativeRuleMiner miner(opts);
    return miner.MineStreamed(*qbt, hooks);
  };
  const auto fall_back = [&](std::string reason) -> Result<MiningResult> {
    dec.reason = std::move(reason);
    QARM_LOG(Info) << "incremental: full mine of '" << qbt_path
                   << "': " << dec.reason;
    return run_full();
  };

  Result<CheckpointState> loaded = ReadCheckpoint(opts.checkpoint_path);
  if (!loaded.ok()) {
    if (loaded.status().code() == StatusCode::kNotFound) {
      return fall_back("no checkpoint at '" + opts.checkpoint_path +
                       "' (first run over this file?)");
    }
    return fall_back("checkpoint '" + opts.checkpoint_path +
                     "' unreadable: " + loaded.status().ToString());
  }
  const CheckpointState& base = *loaded;

  const uint64_t fingerprint = ComputeMiningFingerprint(opts, *qbt);
  const uint64_t options_fp = ComputeMiningOptionsFingerprint(opts, *qbt);

  if ((base.flags & kCheckpointFlagComplete) == 0) {
    // Mid-run progress, not a base. If it belongs to this exact file+options
    // (e.g. an incremental run was killed mid-pass) resume it normally.
    if (base.fingerprint == fingerprint) {
      dec.resumed = true;
      dec.reason = "resuming the interrupted run's mid-pass checkpoint";
      QARM_LOG(Info) << "incremental: " << dec.reason;
      return run_full();
    }
    return fall_back(
        "checkpoint is mid-run progress of a different run (options or "
        "data changed)");
  }
  if (base.options_fingerprint != options_fp) {
    return fall_back(
        "options or partitioning changed since the base run; base counts "
        "are not comparable");
  }
  if (base.base_num_blocks == 0) {
    return fall_back(
        "base checkpoint does not record a QBT block range (pre-append "
        "format or non-QBT run)");
  }
  if (base.base_num_blocks > total_blocks) {
    return fall_back(StrFormat(
        "file has %zu blocks but the base covered %llu — the file shrank",
        total_blocks, static_cast<unsigned long long>(base.base_num_blocks)));
  }
  const size_t base_blocks = static_cast<size_t>(base.base_num_blocks);
  if (qbt->reader().IndexPrefixCrc(base_blocks) != base.base_index_crc) {
    return fall_back(
        "the base blocks' index entries changed — the file was rewritten, "
        "not appended to");
  }
  const uint64_t base_rows = base_blocks == total_blocks
                                 ? total_rows
                                 : qbt->block_row_begin(base_blocks);
  if (base_rows != base.num_rows) {
    return fall_back(StrFormat(
        "base blocks hold %llu rows but the checkpoint recorded %llu",
        static_cast<unsigned long long>(base_rows),
        static_cast<unsigned long long>(base.num_rows)));
  }
  if (base.catalog.value_counts.size() != qbt->num_attributes()) {
    return fall_back("base catalog does not match the file's attributes");
  }
  for (size_t a = 0; a < qbt->num_attributes(); ++a) {
    if (base.catalog.value_counts[a].size() !=
        qbt->attribute(a).domain_size()) {
      return fall_back("base catalog does not match attribute '" +
                       qbt->attribute(a).name + "'s domain");
    }
  }

  // Route A: mine the delta. All scans go through the fault-wrapped full
  // source so block-indexed fault schedules and I/O counters behave as in
  // a full mine; the wrapped options must not wrap again inside the miner.
  dec.incremental = true;
  dec.base_blocks = base_blocks;
  dec.base_rows = base_rows;
  dec.delta_blocks = total_blocks - base_blocks;
  dec.delta_rows = total_rows - base_rows;
  QARM_LOG(Info) << "incremental: base " << base_blocks << " blocks ("
                 << base_rows << " rows) + delta " << dec.delta_blocks
                 << " blocks (" << dec.delta_rows << " rows)";
  if (opts.num_workers > 1) {
    QARM_LOG(Info) << "incremental: delta passes run in-process "
                      "(--workers applies to full mines only)";
  }

  MinerOptions scan_opts = opts;
  scan_opts.inject_faults_spec.clear();
  std::unique_ptr<FaultInjectingRecordSource> faulty;
  const RecordSource* source = qbt.get();
  if (!opts.inject_faults_spec.empty()) {
    QARM_ASSIGN_OR_RETURN(FaultInjectionConfig fault_config,
                          ParseFaultSpec(opts.inject_faults_spec));
    faulty = std::make_unique<FaultInjectingRecordSource>(*qbt, fault_config);
    source = faulty.get();
  }

  IncrementalState state;
  state.base = &base;
  state.source = source;
  state.options = &scan_opts;
  state.base_blocks = base_blocks;
  state.total_blocks = total_blocks;
  state.base_min_count = MinCount(opts.minsup, base_rows);
  state.cur_min_count = MinCount(opts.minsup, total_rows);

  MiningHooks hooks;
  hooks.checkpoint_base.num_blocks = total_blocks;
  hooks.checkpoint_base.index_crc = qbt->reader().IndexPrefixCrc(total_blocks);

  hooks.scan_value_counts =
      [&state](ScanIoStats* io) -> Result<std::vector<std::vector<uint64_t>>> {
    // Value counts are additive over disjoint block ranges: base counts +
    // delta counts = full-file counts, exactly.
    const BlockRangeSource delta(*state.source, state.base_blocks,
                                 state.total_blocks);
    QARM_ASSIGN_OR_RETURN(
        std::vector<std::vector<uint64_t>> counts,
        ItemCatalog::ScanValueCounts(delta, state.options->num_threads, io));
    const std::vector<std::vector<uint64_t>>& base_counts =
        state.base->catalog.value_counts;
    for (size_t a = 0; a < counts.size(); ++a) {
      for (size_t v = 0; v < counts[a].size(); ++v) {
        counts[a][v] += base_counts[a][v];
      }
    }
    return counts;
  };

  hooks.publish_catalog = [&state](const ItemCatalog& catalog,
                                   bool /*restored*/) -> Status {
    state.catalog = &catalog;
    // Identical item words (sorted (attr, lo, hi) triples) mean identical
    // item ids, hence an identical L1 and — candidate generation being
    // deterministic — identical pass-2 candidates in identical order.
    state.frontier_matches =
        catalog.Snapshot().item_words == state.base->catalog.item_words;
    if (!state.frontier_matches) {
      QARM_LOG(Info)
          << "incremental: the appended rows changed the frequent-item "
             "set; counting passes scan the full file";
      state.logged_divergence = true;
    }
    return Status::OK();
  };

  hooks.count_supports =
      [&state](const CandidateStream& candidates,
               CountingStats* stats) -> Result<std::vector<uint32_t>> {
    const size_t k = state.next_k++;
    const size_t pass_idx = k - 1;  // base.passes[0] is L1
    const bool base_has_pass =
        pass_idx < state.base->passes.size() &&
        state.base->passes[pass_idx].k == k &&
        state.base->passes[pass_idx].candidate_counts.size() ==
            candidates.size() &&
        !state.base->passes[pass_idx].candidate_counts.empty();
    if (!state.frontier_matches || !base_has_pass) {
      if (!state.logged_divergence) {
        QARM_LOG(Info) << "incremental: pass " << k
                       << " has no matching base counts; scanning the "
                          "full file from here on";
        state.logged_divergence = true;
      }
      ++state.passes_rescanned;
      return CountSupports(*state.source, *state.catalog, candidates,
                           *state.options, stats);
    }

    const BlockRangeSource delta(*state.source, state.base_blocks,
                                 state.total_blocks);
    QARM_ASSIGN_OR_RETURN(
        std::vector<uint32_t> counts,
        CountSupports(delta, *state.catalog, candidates, *state.options,
                      stats));
    const std::vector<uint32_t>& base_counts =
        state.base->passes[pass_idx].candidate_counts;
    // Merge positionally, and check whether every candidate keeps its
    // frequent/infrequent status under the grown threshold: if so, this
    // pass's frontier — and therefore the next pass's candidates — still
    // match the base run's.
    bool next_matches = true;
    for (size_t c = 0; c < counts.size(); ++c) {
      const uint64_t merged =
          static_cast<uint64_t>(counts[c]) + base_counts[c];
      counts[c] = static_cast<uint32_t>(merged);
      next_matches = next_matches &&
                     (merged >= state.cur_min_count) ==
                         (base_counts[c] >= state.base_min_count);
    }
    ++state.passes_merged;
    if (!next_matches && !state.logged_divergence) {
      QARM_LOG(Info) << "incremental: pass " << k
                     << "'s frontier diverged from the base run; later "
                        "passes scan the full file";
      state.logged_divergence = true;
    }
    state.frontier_matches = next_matches;
    return counts;
  };

  const QuantitativeRuleMiner miner(scan_opts);
  Result<MiningResult> result = miner.MineStreamed(*source, hooks);
  dec.passes_merged = state.passes_merged;
  dec.passes_rescanned = state.passes_rescanned;
  return result;
}

}  // namespace qarm
