#include "table/value.h"

#include "common/string_util.h"

namespace qarm {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(as_int64());
    case ValueType::kDouble:
      return FormatDouble(as_double());
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (is_null() || other.is_null()) {
    return is_null() && !other.is_null();  // NULL sorts first
  }
  QARM_CHECK(type() == other.type());
  switch (type()) {
    case ValueType::kInt64:
      return as_int64() < other.as_int64();
    case ValueType::kDouble:
      return as_double() < other.as_double();
    case ValueType::kString:
      return as_string() < other.as_string();
  }
  return false;
}

}  // namespace qarm
