// CSV import/export for relational tables. The reader is schema-driven:
// the caller declares each attribute's kind and type, the file's header is
// validated against the schema.
#ifndef QARM_TABLE_CSV_H_
#define QARM_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace qarm {

// Parses a CSV file (comma separated, first line is the header) into a
// table with the given schema. Fields are trimmed; numeric fields must
// parse fully; an empty field is a missing value (NULL). Quoting is not
// supported: values must not contain commas.
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

// Parses CSV from an in-memory string (same format as ReadCsv).
Result<Table> ReadCsvString(const std::string& text, const Schema& schema);

// Writes `table` as CSV (header + rows) to `path`.
Status WriteCsv(const Table& table, const std::string& path);

// Renders `table` as a CSV string.
std::string ToCsvString(const Table& table);

}  // namespace qarm

#endif  // QARM_TABLE_CSV_H_
