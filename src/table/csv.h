// CSV import/export for relational tables. The reader is schema-driven:
// the caller declares each attribute's kind and type, the file's header is
// validated against the schema.
#ifndef QARM_TABLE_CSV_H_
#define QARM_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace qarm {

// Parses a CSV file (comma separated, first line is the header) into a
// table with the given schema. RFC 4180 quoting is supported: a
// double-quoted field may contain commas, newlines, and escaped quotes
// (""); quoted strings are taken verbatim, unquoted fields are trimmed.
// Numeric fields must parse fully; an empty field is a missing value
// (NULL). Parse errors carry the 1-based line number of the offending
// record.
Result<Table> ReadCsv(const std::string& path, const Schema& schema);

// Parses CSV from an in-memory string (same format as ReadCsv).
Result<Table> ReadCsvString(const std::string& text, const Schema& schema);

// Writes `table` as CSV (header + rows) to `path`. Fields containing a
// comma, quote, or newline are double-quoted with "" escapes, so the
// output always reads back losslessly.
Status WriteCsv(const Table& table, const std::string& path);

// Renders `table` as a CSV string (same quoting as WriteCsv).
std::string ToCsvString(const Table& table);

// Quotes one CSV field if needed (exposed for streaming writers).
std::string CsvQuoteField(const std::string& s);

}  // namespace qarm

#endif  // QARM_TABLE_CSV_H_
