// Relational schema: named attributes that are either categorical or
// quantitative (the paper's two attribute classes, Section 1).
#ifndef QARM_TABLE_SCHEMA_H_
#define QARM_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace qarm {

// How the miner treats an attribute. Boolean attributes are categorical
// attributes with two values (Section 1 of the paper).
enum class AttributeKind {
  kCategorical = 0,
  kQuantitative = 1,
};

const char* AttributeKindName(AttributeKind kind);

// Declaration of one attribute.
struct AttributeDef {
  std::string name;
  AttributeKind kind = AttributeKind::kCategorical;
  ValueType type = ValueType::kString;
};

// An ordered list of attribute definitions with name lookup.
// Quantitative attributes must be numeric (int64 or double).
class Schema {
 public:
  Schema() = default;

  // Validates and builds a schema: unique names, quantitative => numeric.
  static Result<Schema> Make(std::vector<AttributeDef> attributes);

  // Parses the user-facing schema-spec string, a comma-separated list of
  // NAME:KIND entries where KIND is "quant"/"quantitative" (optionally
  // ":int" or ":double", default int) or "cat"/"categorical". Whitespace
  // around names and kinds is stripped. Never aborts on malformed text:
  // every defect — missing kind, unknown kind or numeric type, empty or
  // duplicate name — comes back as InvalidArgument.
  static Result<Schema> Parse(const std::string& spec);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or kNotFound status.
  Result<size_t> IndexOf(const std::string& name) const;

  // Number of quantitative attributes (the `n` of Lemma 3 / Equation 2).
  size_t num_quantitative() const { return num_quantitative_; }
  size_t num_categorical() const {
    return attributes_.size() - num_quantitative_;
  }

  bool operator==(const Schema& other) const;

  // e.g. "Age:quantitative:int64, Married:categorical:string".
  std::string ToString() const;

 private:
  std::vector<AttributeDef> attributes_;
  size_t num_quantitative_ = 0;
};

}  // namespace qarm

#endif  // QARM_TABLE_SCHEMA_H_
