// Synthetic dataset generators.
//
// The paper's evaluation (Section 6) uses a proprietary 500,000-record
// dataset with 5 quantitative attributes (monthly-income, credit-limit,
// current-balance, year-to-date balance, year-to-date interest) and 2
// categorical attributes (employee-category, marital-status). That data is
// unavailable, so MakeFinancialDataset() synthesizes a dataset with the same
// schema, realistic marginal distributions, and implanted cross-attribute
// dependencies, seeded and fully deterministic. The experiments measure rule
// counts, pruning behaviour, and scale-up, all of which depend only on the
// joint-distribution shape that the generator controls.
#ifndef QARM_TABLE_DATAGEN_H_
#define QARM_TABLE_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace qarm {

// The 5-record People table of Figures 1 and 3:
//   Age (quantitative), Married (categorical), NumCars (quantitative).
Table MakePeopleTable();

// The Section 6 stand-in: 7 attributes (5 quantitative, 2 categorical),
// `num_records` rows, deterministic in `seed`.
//
// Implanted structure (all soft, i.e. probabilistic):
//   - monthly income is log-normal with employee-category-dependent location;
//   - credit limit is a noisy multiple of income;
//   - current balance is a skewed fraction of the credit limit, with hourly
//     employees running higher utilization;
//   - ytd balance tracks current balance; ytd interest is rate * ytd balance
//     with category-dependent rates;
//   - marital status correlates with the income band.
Table MakeFinancialDataset(size_t num_records, uint64_t seed);

// Streams the same dataset straight to a CSV file, one record at a time —
// the dataset is never resident, so arbitrarily large files can be
// generated in constant memory. Byte-identical to writing
// MakeFinancialDataset(num_records, seed) with WriteCsv.
Status WriteFinancialDatasetCsv(const std::string& path, size_t num_records,
                                uint64_t seed);

// The Figure 6 "interest" example: quantitative x uniform over 1..10 and a
// boolean-like categorical y, constructed so that
//   support(<x:v>, <y:yes>) = 1% for v != 5 and 11% for v = 5.
// The only genuinely interesting itemset is {<x:5..5>, <y:yes>}; the
// intervals [3..5] ("Decoy"), [3..4] ("Boring") and [1..10] ("Whole") are
// the traps the final interest measure must reject.
Table MakeDecoyTable(size_t num_records, uint64_t seed);

// --- Generic rule-implanting generator -------------------------------------

// Distribution of a synthetic quantitative attribute.
enum class SyntheticDist {
  kUniform,    // uniform in [param0, param1]
  kNormal,     // normal(mean = param0, sd = param1)
  kLogNormal,  // exp(normal(mu = param0, sigma = param1))
  kZipf,       // zipf over {0..param0-1} with theta = param1
};

// One attribute of a synthetic table. For categorical attributes fill
// `categories` (+ optional `weights`, default uniform); for quantitative
// attributes fill the distribution fields.
struct SyntheticAttribute {
  std::string name;
  AttributeKind kind = AttributeKind::kQuantitative;

  // Categorical-only.
  std::vector<std::string> categories;
  std::vector<double> weights;

  // Quantitative-only.
  SyntheticDist dist = SyntheticDist::kUniform;
  double param0 = 0.0;
  double param1 = 1.0;
  double clamp_lo = -1e18;  // values are clamped into [clamp_lo, clamp_hi]
  double clamp_hi = 1e18;
  bool integral = true;  // round to int64 and store as kInt64

  // Either kind: probability that a record lacks this attribute (NULL).
  double missing_probability = 0.0;
};

// A soft dependency implanted into the data: whenever the antecedent
// attribute falls in its range (quantitative) or equals its category
// (categorical), the consequent attribute is, with `probability`,
// overwritten by a draw that satisfies the consequent condition.
struct ImplantedRule {
  size_t antecedent_attr = 0;
  double ante_lo = 0.0;  // quantitative antecedent range (inclusive)
  double ante_hi = 0.0;
  int ante_category = -1;  // categorical antecedent: index into categories

  size_t consequent_attr = 0;
  double cons_lo = 0.0;  // quantitative consequent range (uniform draw)
  double cons_hi = 0.0;
  int cons_category = -1;  // categorical consequent: index into categories

  double probability = 1.0;
};

// Configuration for GenerateSynthetic.
struct SyntheticConfig {
  std::vector<SyntheticAttribute> attributes;
  std::vector<ImplantedRule> rules;
};

// Generates `num_records` rows: base values drawn independently per the
// attribute specs, then implanted rules applied in order.
Table GenerateSynthetic(const SyntheticConfig& config, size_t num_records,
                        uint64_t seed);

}  // namespace qarm

#endif  // QARM_TABLE_DATAGEN_H_
