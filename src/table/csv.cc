#include "table/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace qarm {
namespace {

Result<Value> ParseField(std::string_view raw, ValueType type, size_t line) {
  std::string field(StripWhitespace(raw));
  if (field.empty()) return Value::Null();  // missing attribute
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu: '%s' is not an int64", line, field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu: '%s' is not a double", line, field.c_str()));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::move(field));
  }
  return Status::Internal("unreachable");
}

Result<Table> ReadCsvStream(std::istream& in, const Schema& schema) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<std::string> header = Split(line, ',');
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("header has %zu fields, schema has %zu attributes",
                  header.size(), schema.num_attributes()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    std::string name(StripWhitespace(header[i]));
    if (name != schema.attribute(i).name) {
      return Status::InvalidArgument(
          StrFormat("header field %zu is '%s', schema expects '%s'", i,
                    name.c_str(), schema.attribute(i).name.c_str()));
    }
  }

  Table table(schema);
  std::vector<Value> row(schema.num_attributes());
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.num_attributes()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      QARM_ASSIGN_OR_RETURN(
          row[i], ParseField(fields[i], schema.attribute(i).type, line_no));
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsvStream(in, schema);
}

Result<Table> ReadCsvString(const std::string& text, const Schema& schema) {
  std::istringstream in(text);
  return ReadCsvStream(in, schema);
}

std::string ToCsvString(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    out += schema.attribute(i).name;
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += table.Get(r, c).ToString();
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << ToCsvString(table);
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace qarm
