#include "table/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace qarm {
namespace {

// One raw field of a record. Quoted fields keep their content verbatim
// (no trimming); unquoted fields are trimmed by the parser.
struct RawField {
  std::string text;
  bool quoted = false;
};

// Reads one CSV record (RFC 4180: fields may be double-quoted; a quoted
// field may contain commas, escaped quotes as "", and newlines). Returns
// false at end of input. `line_no` must hold the number of lines consumed
// so far; it is advanced past every line this record spans.
Result<bool> ReadCsvRecord(std::istream& in, size_t* line_no,
                           std::vector<RawField>* fields) {
  fields->clear();
  if (in.peek() == std::char_traits<char>::eof()) return false;
  ++*line_no;
  const size_t record_line = *line_no;

  RawField field;
  bool in_quotes = false;
  auto end_field = [&]() {
    fields->push_back(std::move(field));
    field = RawField{};
  };
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return Status::InvalidArgument(
            StrFormat("line %zu: unterminated quoted field", record_line));
      }
      end_field();
      return true;
    }
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          in.get();
          field.text += '"';  // "" inside quotes is an escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        if (ch == '\n') ++*line_no;
        field.text += ch;
      }
      continue;
    }
    if (ch == ',') {
      end_field();
    } else if (ch == '\n') {
      end_field();
      return true;
    } else if (ch == '\r') {
      if (in.peek() == '\n') in.get();
      end_field();
      return true;
    } else if (ch == '"' && !field.quoted &&
               StripWhitespace(field.text).empty()) {
      // Opening quote (leniently allowed after leading whitespace).
      field.text.clear();
      field.quoted = true;
      in_quotes = true;
    } else if (field.quoted) {
      if (ch != ' ' && ch != '\t') {
        return Status::InvalidArgument(StrFormat(
            "line %zu: unexpected character after closing quote", *line_no));
      }
      // Trailing whitespace after a closing quote is ignored.
    } else {
      field.text += ch;
    }
  }
}

// A record is a blank line when it is a single unquoted whitespace field.
bool IsBlankRecord(const std::vector<RawField>& fields) {
  return fields.size() == 1 && !fields[0].quoted &&
         StripWhitespace(fields[0].text).empty();
}

Result<Value> ParseField(const RawField& raw, ValueType type, size_t line) {
  if (type == ValueType::kString) {
    // Quoted strings are verbatim; unquoted ones are trimmed as before.
    std::string field =
        raw.quoted ? raw.text : std::string(StripWhitespace(raw.text));
    if (field.empty()) return Value::Null();  // missing attribute
    return Value(std::move(field));
  }
  std::string field(StripWhitespace(raw.text));
  if (field.empty()) return Value::Null();  // missing attribute
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu: '%s' is not an int64", line, field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu: '%s' is not a double", line, field.c_str()));
      }
      // strtod accepts "nan"/"inf"; neither can be partitioned (NaN breaks
      // the ordering the interval assignment relies on), so reject them as
      // malformed data rather than letting them poison the mapper.
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(StrFormat(
            "line %zu: '%s' is not a finite number", line, field.c_str()));
      }
      return Value(v);
    }
    default:
      return Status::Internal("unreachable");
  }
}

Result<Table> ReadCsvStream(std::istream& in, const Schema& schema) {
  size_t line_no = 0;
  std::vector<RawField> fields;
  QARM_ASSIGN_OR_RETURN(bool has_header, ReadCsvRecord(in, &line_no, &fields));
  if (!has_header || IsBlankRecord(fields)) {
    return Status::InvalidArgument("empty CSV input");
  }
  if (fields.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        StrFormat("header has %zu fields, schema has %zu attributes",
                  fields.size(), schema.num_attributes()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    std::string name = fields[i].quoted
                           ? fields[i].text
                           : std::string(StripWhitespace(fields[i].text));
    if (name != schema.attribute(i).name) {
      return Status::InvalidArgument(
          StrFormat("header field %zu is '%s', schema expects '%s'", i,
                    name.c_str(), schema.attribute(i).name.c_str()));
    }
  }

  Table table(schema);
  std::vector<Value> row(schema.num_attributes());
  while (true) {
    QARM_ASSIGN_OR_RETURN(bool more, ReadCsvRecord(in, &line_no, &fields));
    if (!more) break;
    if (IsBlankRecord(fields)) continue;
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.num_attributes()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      QARM_ASSIGN_OR_RETURN(
          row[i], ParseField(fields[i], schema.attribute(i).type, line_no));
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadCsvStream(in, schema);
}

Result<Table> ReadCsvString(const std::string& text, const Schema& schema) {
  std::istringstream in(text);
  return ReadCsvStream(in, schema);
}

std::string CsvQuoteField(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string ToCsvString(const Table& table) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    out += CsvQuoteField(schema.attribute(i).name);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += CsvQuoteField(table.Get(r, c).ToString());
    }
    out += '\n';
  }
  return out;
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << ToCsvString(table);
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace qarm
