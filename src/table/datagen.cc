#include "table/datagen.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/macros.h"
#include "common/random.h"
#include "table/csv.h"

namespace qarm {
namespace {

// Draws an index from a discrete distribution given cumulative weights.
size_t SampleDiscrete(const std::vector<double>& cumulative, Rng* rng) {
  double u = rng->UniformDouble() * cumulative.back();
  auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
  if (it == cumulative.end()) return cumulative.size() - 1;
  return static_cast<size_t>(it - cumulative.begin());
}

std::vector<double> Cumulate(const std::vector<double>& weights) {
  std::vector<double> out(weights.size());
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    QARM_CHECK_GE(weights[i], 0.0);
    sum += weights[i];
    out[i] = sum;
  }
  QARM_CHECK_GT(sum, 0.0);
  return out;
}

}  // namespace

Table MakePeopleTable() {
  Schema schema =
      Schema::Make({{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"Married", AttributeKind::kCategorical,
                     ValueType::kString},
                    {"NumCars", AttributeKind::kQuantitative,
                     ValueType::kInt64}})
          .value();
  Table table(schema);
  // RecordIDs 100..500 of Figure 1.
  struct Row {
    int64_t age;
    const char* married;
    int64_t cars;
  };
  constexpr Row kRows[] = {
      {23, "No", 1}, {25, "Yes", 1}, {29, "No", 0},
      {34, "Yes", 2}, {38, "Yes", 2},
  };
  for (const Row& r : kRows) {
    table.AppendRowUnchecked(
        {Value(r.age), Value(std::string(r.married)), Value(r.cars)});
  }
  return table;
}

namespace {

Schema FinancialSchema() {
  return Schema::Make(
             {{"monthly_income", AttributeKind::kQuantitative,
               ValueType::kInt64},
              {"credit_limit", AttributeKind::kQuantitative, ValueType::kInt64},
              {"current_balance", AttributeKind::kQuantitative,
               ValueType::kInt64},
              {"ytd_balance", AttributeKind::kQuantitative, ValueType::kInt64},
              {"ytd_interest", AttributeKind::kQuantitative,
               ValueType::kDouble},
              {"employee_category", AttributeKind::kCategorical,
               ValueType::kString},
              {"marital_status", AttributeKind::kCategorical,
               ValueType::kString}})
      .value();
}

// Draws the financial records one at a time, so callers can either collect
// them into a Table or stream them straight to disk without ever holding
// the whole dataset. The draw order is part of the generator's contract:
// MakeFinancialDataset and WriteFinancialDatasetCsv produce identical data
// for the same seed.
class FinancialRecordGenerator {
 public:
  explicit FinancialRecordGenerator(uint64_t seed)
      : rng_(seed), category_cum_(Cumulate({0.35, 0.35, 0.15, 0.05, 0.10})) {}

  // Fills `row` (7 values) with the next record.
  void NextRow(std::vector<Value>* row) {
    // Log-income location per employee category; the spread keeps the five
    // bands overlapping (so rules are probabilistic, not partitions).
    constexpr double kIncomeMu[] = {7.7, 8.2, 8.7, 9.5, 7.5};
    constexpr double kIncomeSigma = 0.35;
    // Interest rate per category (executives get preferential rates).
    constexpr double kRate[] = {0.18, 0.15, 0.12, 0.08, 0.16};
    static const char* kCategories[] = {"hourly", "salaried", "manager",
                                        "executive", "retired"};
    static const char* kMarital[] = {"single", "married", "divorced",
                                     "widowed"};

    // Correlations are deliberately soft (mixtures and wide multiplicative
    // noise): hard functional relations would make nearly every pair of
    // mid-support ranges frequent and blow the candidate sets up far beyond
    // anything the paper's real dataset exhibits. Mass points (zero
    // balances, limits rounded to $100) mirror real billing data and
    // exercise the single-value-partition paths.
    size_t cat = SampleDiscrete(category_cum_, &rng_);
    double income = rng_.LogNormal(kIncomeMu[cat], kIncomeSigma);
    income = std::clamp(income, 400.0, 60000.0);

    // Credit limit: 40% of customers have an income-proportional limit,
    // the rest carry a legacy limit unrelated to current income.
    double limit;
    if (rng_.Bernoulli(0.4)) {
      limit = income * rng_.UniformDouble(4.0, 8.0);
    } else {
      limit = rng_.LogNormal(9.6, 0.8);
    }
    limit = std::clamp(limit, 500.0, 500000.0);
    limit = std::round(limit / 100.0) * 100.0;  // issued in $100 steps

    // Utilization: ~18% of customers carry no balance right now; the rest
    // are skewed toward low utilization, with hourly employees running
    // hotter.
    double util = 0.0;
    if (!rng_.Bernoulli(0.18)) {
      util = rng_.UniformDouble();
      util = util * util;
      if (cat == 0) {
        util = std::min(1.0, util + rng_.UniformDouble(0.0, 0.3));
      }
    }
    double balance = limit * util;

    // YTD balance is the year's average, only half-driven by the current
    // balance: a customer idle today may well have revolved during the year.
    double util_year = rng_.UniformDouble();
    util_year = 0.5 * util + 0.5 * util_year * util_year;
    double ytd_balance = limit * util_year * rng_.UniformDouble(0.8, 1.2);

    // Interest: category base rate, personal spread, billing noise.
    double rate = kRate[cat] + rng_.UniformDouble(-0.05, 0.05);
    double ytd_interest = ytd_balance * rate * rng_.UniformDouble(0.8, 1.2);

    // Marital status correlates with the income band: higher incomes skew
    // married, the retired band skews widowed.
    std::vector<double> marital_weights = {0.30, 0.45, 0.18, 0.07};
    if (income > 6000.0) {
      marital_weights = {0.15, 0.65, 0.15, 0.05};
    } else if (income < 1800.0) {
      marital_weights = {0.50, 0.25, 0.18, 0.07};
    }
    if (cat == 4) marital_weights[3] += 0.25;  // retired -> widowed
    size_t marital = SampleDiscrete(Cumulate(marital_weights), &rng_);

    row->resize(7);
    (*row)[0] = Value(static_cast<int64_t>(std::llround(income)));
    (*row)[1] = Value(static_cast<int64_t>(std::llround(limit)));
    (*row)[2] = Value(static_cast<int64_t>(std::llround(balance)));
    (*row)[3] = Value(static_cast<int64_t>(std::llround(ytd_balance)));
    (*row)[4] = Value(std::round(ytd_interest * 100.0) / 100.0);
    (*row)[5] = Value(std::string(kCategories[cat]));
    (*row)[6] = Value(std::string(kMarital[marital]));
  }

 private:
  Rng rng_;
  std::vector<double> category_cum_;
};

}  // namespace

Table MakeFinancialDataset(size_t num_records, uint64_t seed) {
  Table table(FinancialSchema());
  table.Reserve(num_records);
  FinancialRecordGenerator gen(seed);
  std::vector<Value> row;
  for (size_t i = 0; i < num_records; ++i) {
    gen.NextRow(&row);
    table.AppendRowUnchecked(row);
  }
  return table;
}

Status WriteFinancialDatasetCsv(const std::string& path, size_t num_records,
                                uint64_t seed) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const Schema schema = FinancialSchema();
  FinancialRecordGenerator gen(seed);
  std::vector<Value> row;
  std::string buffer;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) buffer += ',';
    buffer += CsvQuoteField(schema.attribute(i).name);
  }
  buffer += '\n';
  for (size_t r = 0; r < num_records; ++r) {
    gen.NextRow(&row);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) buffer += ',';
      buffer += CsvQuoteField(row[i].ToString());
    }
    buffer += '\n';
    // Flush in chunks: the buffer never grows with the dataset.
    if (buffer.size() >= (1u << 20)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Table MakeDecoyTable(size_t num_records, uint64_t seed) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"y", AttributeKind::kCategorical, ValueType::kString}})
          .value();
  Table table(schema);
  table.Reserve(num_records);
  Rng rng(seed);

  // Joint distribution (Figure 6): support(x=v AND y=yes) is 1% for v != 5
  // and 11% for v = 5 (total 20% of records have y=yes). The remaining 80%
  // has y=no, spread uniformly over x in 1..10.
  for (size_t i = 0; i < num_records; ++i) {
    double u = rng.UniformDouble();
    int64_t x;
    std::string y;
    if (u < 0.20) {
      y = "yes";
      double v = rng.UniformDouble() * 0.20;
      if (v < 0.11) {
        x = 5;
      } else {
        // 9 x-values share the remaining 9% equally.
        int64_t slot = rng.UniformInt(0, 8);
        x = slot < 4 ? slot + 1 : slot + 2;  // skip 5
      }
    } else {
      y = "no";
      x = rng.UniformInt(1, 10);
    }
    table.AppendRowUnchecked({Value(x), Value(std::move(y))});
  }
  return table;
}

Table GenerateSynthetic(const SyntheticConfig& config, size_t num_records,
                        uint64_t seed) {
  std::vector<AttributeDef> defs;
  defs.reserve(config.attributes.size());
  for (const SyntheticAttribute& attr : config.attributes) {
    AttributeDef def;
    def.name = attr.name;
    def.kind = attr.kind;
    if (attr.kind == AttributeKind::kCategorical) {
      QARM_CHECK(!attr.categories.empty());
      def.type = ValueType::kString;
    } else {
      def.type = attr.integral ? ValueType::kInt64 : ValueType::kDouble;
    }
    defs.push_back(std::move(def));
  }
  Schema schema = Schema::Make(std::move(defs)).value();
  Table table(schema);
  table.Reserve(num_records);
  Rng rng(seed);

  // Precompute categorical CDFs and Zipf tables.
  std::vector<std::vector<double>> cat_cum(config.attributes.size());
  std::vector<ZipfDistribution> zipfs;
  std::vector<int> zipf_index(config.attributes.size(), -1);
  for (size_t a = 0; a < config.attributes.size(); ++a) {
    const SyntheticAttribute& attr = config.attributes[a];
    if (attr.kind == AttributeKind::kCategorical) {
      std::vector<double> weights = attr.weights;
      if (weights.empty()) weights.assign(attr.categories.size(), 1.0);
      QARM_CHECK_EQ(weights.size(), attr.categories.size());
      cat_cum[a] = Cumulate(weights);
    } else if (attr.dist == SyntheticDist::kZipf) {
      zipf_index[a] = static_cast<int>(zipfs.size());
      zipfs.emplace_back(static_cast<size_t>(attr.param0), attr.param1);
    }
  }

  // Scratch row: categorical values held as category indices, quantitative
  // as doubles, boxed only at append time.
  std::vector<double> quant(config.attributes.size(), 0.0);
  std::vector<size_t> cat(config.attributes.size(), 0);
  std::vector<Value> row(config.attributes.size());

  for (size_t i = 0; i < num_records; ++i) {
    for (size_t a = 0; a < config.attributes.size(); ++a) {
      const SyntheticAttribute& attr = config.attributes[a];
      if (attr.kind == AttributeKind::kCategorical) {
        cat[a] = SampleDiscrete(cat_cum[a], &rng);
        continue;
      }
      double v = 0.0;
      switch (attr.dist) {
        case SyntheticDist::kUniform:
          v = rng.UniformDouble(attr.param0, attr.param1);
          break;
        case SyntheticDist::kNormal:
          v = rng.Normal(attr.param0, attr.param1);
          break;
        case SyntheticDist::kLogNormal:
          v = rng.LogNormal(attr.param0, attr.param1);
          break;
        case SyntheticDist::kZipf:
          v = static_cast<double>(zipfs[zipf_index[a]].Sample(&rng));
          break;
      }
      quant[a] = std::clamp(v, attr.clamp_lo, attr.clamp_hi);
    }

    for (const ImplantedRule& rule : config.rules) {
      const SyntheticAttribute& ante = config.attributes[rule.antecedent_attr];
      bool fires;
      if (ante.kind == AttributeKind::kCategorical) {
        fires = rule.ante_category >= 0 &&
                cat[rule.antecedent_attr] ==
                    static_cast<size_t>(rule.ante_category);
      } else {
        double v = quant[rule.antecedent_attr];
        fires = v >= rule.ante_lo && v <= rule.ante_hi;
      }
      if (!fires || !rng.Bernoulli(rule.probability)) continue;
      const SyntheticAttribute& cons = config.attributes[rule.consequent_attr];
      if (cons.kind == AttributeKind::kCategorical) {
        QARM_CHECK_GE(rule.cons_category, 0);
        cat[rule.consequent_attr] = static_cast<size_t>(rule.cons_category);
      } else {
        quant[rule.consequent_attr] =
            rng.UniformDouble(rule.cons_lo, rule.cons_hi);
      }
    }

    for (size_t a = 0; a < config.attributes.size(); ++a) {
      const SyntheticAttribute& attr = config.attributes[a];
      if (attr.missing_probability > 0.0 &&
          rng.Bernoulli(attr.missing_probability)) {
        row[a] = Value::Null();
      } else if (attr.kind == AttributeKind::kCategorical) {
        row[a] = Value(attr.categories[cat[a]]);
      } else if (attr.integral) {
        row[a] = Value(static_cast<int64_t>(std::llround(quant[a])));
      } else {
        row[a] = Value(quant[a]);
      }
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

}  // namespace qarm
