#include "table/schema.h"

#include <unordered_set>

#include "common/string_util.h"

namespace qarm {

const char* AttributeKindName(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kCategorical:
      return "categorical";
    case AttributeKind::kQuantitative:
      return "quantitative";
  }
  return "?";
}

Result<Schema> Schema::Make(std::vector<AttributeDef> attributes) {
  std::unordered_set<std::string> seen;
  size_t num_quant = 0;
  for (const AttributeDef& def : attributes) {
    if (def.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(def.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + def.name);
    }
    if (def.kind == AttributeKind::kQuantitative) {
      if (def.type == ValueType::kString) {
        return Status::InvalidArgument("quantitative attribute '" + def.name +
                                       "' must be numeric");
      }
      ++num_quant;
    }
  }
  Schema schema;
  schema.attributes_ = std::move(attributes);
  schema.num_quantitative_ = num_quant;
  return schema;
}

Result<Schema> Schema::Parse(const std::string& spec) {
  std::vector<AttributeDef> defs;
  for (const std::string& field : Split(spec, ',')) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.size() < 2) {
      return Status::InvalidArgument("schema entry needs NAME:KIND: '" +
                                     field + "'");
    }
    if (parts.size() > 3) {
      return Status::InvalidArgument("schema entry has too many ':' parts: '" +
                                     field + "'");
    }
    AttributeDef def;
    def.name = std::string(StripWhitespace(parts[0]));
    std::string kind(StripWhitespace(parts[1]));
    if (kind == "quant" || kind == "quantitative") {
      def.kind = AttributeKind::kQuantitative;
      def.type = ValueType::kInt64;
      if (parts.size() > 2) {
        std::string type(StripWhitespace(parts[2]));
        if (type == "double") {
          def.type = ValueType::kDouble;
        } else if (type != "int") {
          return Status::InvalidArgument("unknown quantitative type: " + type);
        }
      }
    } else if (kind == "cat" || kind == "categorical") {
      if (parts.size() > 2) {
        return Status::InvalidArgument(
            "categorical attribute takes no type suffix: '" + field + "'");
      }
      def.kind = AttributeKind::kCategorical;
      def.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown attribute kind: " + kind);
    }
    defs.push_back(std::move(def));
  }
  return Make(std::move(defs));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const AttributeDef& a = attributes_[i];
    const AttributeDef& b = other.attributes_[i];
    if (a.name != b.name || a.kind != b.kind || a.type != b.type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const AttributeDef& def : attributes_) {
    parts.push_back(def.name + ":" + AttributeKindName(def.kind) + ":" +
                    ValueTypeName(def.type));
  }
  return Join(parts, ", ");
}

}  // namespace qarm
