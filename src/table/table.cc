#include "table/table.h"

#include <algorithm>

#include "common/string_util.h"

namespace qarm {

size_t Column::size() const { return valid_.size(); }

Value Column::Get(size_t row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case ValueType::kInt64:
      return Value(int64_data_[row]);
    case ValueType::kDouble:
      return Value(double_data_[row]);
    case ValueType::kString:
      return Value(string_data_[row]);
  }
  return Value();
}

void Column::Append(const Value& value) {
  if (value.is_null()) {
    AppendNull();
    return;
  }
  QARM_CHECK(value.type() == type_);
  switch (type_) {
    case ValueType::kInt64:
      int64_data_.push_back(value.as_int64());
      break;
    case ValueType::kDouble:
      double_data_.push_back(value.as_double());
      break;
    case ValueType::kString:
      string_data_.push_back(value.as_string());
      break;
  }
  valid_.push_back(1);
}

void Column::AppendInt64(int64_t v) {
  QARM_DCHECK(type_ == ValueType::kInt64);
  int64_data_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  QARM_DCHECK(type_ == ValueType::kDouble);
  double_data_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  QARM_DCHECK(type_ == ValueType::kString);
  string_data_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::AppendNull() {
  // Keep the typed storage dense so row indices stay aligned.
  switch (type_) {
    case ValueType::kInt64:
      int64_data_.push_back(0);
      break;
    case ValueType::kDouble:
      double_data_.push_back(0.0);
      break;
    case ValueType::kString:
      string_data_.emplace_back();
      break;
  }
  valid_.push_back(0);
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case ValueType::kInt64:
      int64_data_.reserve(n);
      break;
    case ValueType::kDouble:
      double_data_.reserve(n);
      break;
    case ValueType::kString:
      string_data_.reserve(n);
      break;
  }
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  for (const AttributeDef& def : schema_.attributes()) {
    columns_.emplace_back(def.type);
  }
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu attributes",
                  values.size(), columns_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) continue;
    if (values[i].type() != columns_[i].type()) {
      return Status::InvalidArgument(StrFormat(
          "column %zu expects %s, got %s", i,
          ValueTypeName(columns_[i].type()), ValueTypeName(values[i].type())));
    }
  }
  AppendRowUnchecked(values);
  return Status::OK();
}

void Table::AppendRowUnchecked(const std::vector<Value>& values) {
  for (size_t i = 0; i < values.size(); ++i) columns_[i].Append(values[i]);
  ++num_rows_;
}

void Table::Reserve(size_t n) {
  for (Column& col : columns_) col.Reserve(n);
}

Table Table::Head(size_t n) const {
  Table out(schema_);
  size_t rows = std::min(n, num_rows_);
  out.Reserve(rows);
  std::vector<Value> row(columns_.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) row[c] = Get(r, c);
    out.AppendRowUnchecked(row);
  }
  return out;
}

std::string Table::ToString(size_t max_rows) const {
  size_t rows = std::min(max_rows, num_rows_);
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const AttributeDef& def : schema_.attributes()) {
    header.push_back(def.name);
  }
  cells.push_back(header);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    row.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      row.push_back(Get(r, c).ToString());
    }
    cells.push_back(std::move(row));
  }
  std::vector<size_t> widths(columns_.size(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t r = 0; r < cells.size(); ++r) {
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += cells[r][c];
      out.append(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        out.append(2, ' ');
      }
      out += '\n';
    }
  }
  if (rows < num_rows_) {
    out += StrFormat("... (%zu more rows)\n", num_rows_ - rows);
  }
  return out;
}

}  // namespace qarm
