// A dynamically typed cell value for relational tables.
#ifndef QARM_TABLE_VALUE_H_
#define QARM_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/macros.h"

namespace qarm {

// Physical type of a column.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

// Marker for a missing cell (the paper's record model, Section 2: each
// attribute occurs *at most* once in a record).
struct NullValue {
  bool operator==(const NullValue&) const { return true; }
  bool operator<(const NullValue&) const { return false; }
};

// Human-readable type name ("int64", "double", "string").
const char* ValueTypeName(ValueType type);

// One cell: an int64, a double, a string, or NULL (attribute absent from
// the record). Values are totally ordered within a type; cross-type
// comparison is a programmer error.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  // The missing-value singleton.
  static Value Null() {
    Value v;
    v.data_ = NullValue{};
    return v;
  }

  bool is_null() const {
    return std::holds_alternative<NullValue>(data_);
  }

  // Type of a non-null value; must not be called on NULL.
  ValueType type() const {
    QARM_CHECK(!is_null());
    return static_cast<ValueType>(data_.index());
  }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t as_int64() const {
    QARM_CHECK(is_int64());
    return std::get<int64_t>(data_);
  }
  double as_double() const {
    QARM_CHECK(is_double());
    return std::get<double>(data_);
  }
  const std::string& as_string() const {
    QARM_CHECK(is_string());
    return std::get<std::string>(data_);
  }

  // Numeric view: int64 widened to double. Requires a numeric type.
  double AsNumeric() const {
    if (is_int64()) return static_cast<double>(as_int64());
    return as_double();
  }

  // Renders the value for display / CSV output.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Same-type ordering; aborts on type mismatch.
  bool operator<(const Value& other) const;

 private:
  std::variant<int64_t, double, std::string, NullValue> data_;
};

}  // namespace qarm

#endif  // QARM_TABLE_VALUE_H_
