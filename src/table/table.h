// Columnar in-memory relational table. The paper's record set D (Section 2):
// each record assigns at most one value to each attribute; here every record
// assigns exactly one value per attribute (no NULLs), which matches the
// paper's experiments.
#ifndef QARM_TABLE_TABLE_H_
#define QARM_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/schema.h"
#include "table/value.h"

namespace qarm {

// Typed column storage: exactly one of the vectors is used, per the schema.
// Cells may be NULL (attribute absent from the record).
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const;

  // True when the cell is missing. Typed accessors must not be used on
  // NULL cells.
  bool IsNull(size_t row) const { return valid_[row] == 0; }

  // Typed accessors; the variant not matching type() must not be used.
  int64_t GetInt64(size_t row) const { return int64_data_[row]; }
  double GetDouble(size_t row) const { return double_data_[row]; }
  const std::string& GetString(size_t row) const { return string_data_[row]; }

  // Generic (boxed) accessor; NULL cells box as Value::Null().
  Value Get(size_t row) const;

  // Numeric view of a cell (int64 widened to double). Numeric columns only,
  // non-null cells only.
  double GetNumeric(size_t row) const {
    QARM_DCHECK(!IsNull(row));
    return type_ == ValueType::kInt64 ? static_cast<double>(int64_data_[row])
                                      : double_data_[row];
  }

  // Appends a cell; a non-null value's type must match the column type.
  void Append(const Value& value);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();

  void Reserve(size_t n);

 private:
  ValueType type_;
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<std::string> string_data_;
  std::vector<uint8_t> valid_;
};

// Immutable-after-build columnar table.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  // Cell accessor (boxed).
  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  // Appends one record; `values` must match the schema arity and types.
  Status AppendRow(const std::vector<Value>& values);

  // Unchecked fast-path append used by generators (types must match).
  void AppendRowUnchecked(const std::vector<Value>& values);

  void Reserve(size_t n);

  // First `n` rows of this table (used by the scale-up benchmarks).
  Table Head(size_t n) const;

  // Renders up to `max_rows` rows as an aligned text table for examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace qarm

#endif  // QARM_TABLE_TABLE_H_
