// Parsing and bookkeeping for remote-worker endpoints (`--worker=HOST:PORT`,
// repeatable). The registry is deliberately static — the endpoint list the
// coordinator starts with is the universe of workers for the whole run —
// but assignment within it is dynamic: when a worker dies and cannot be
// reconnected within the connect budget, its shard is redistributed to the
// next reachable endpoint in fixed order, which keeps recovery
// deterministic (the same failure always lands on the same survivor).
#ifndef QARM_DIST_WORKER_REGISTRY_H_
#define QARM_DIST_WORKER_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace qarm {

struct WorkerEndpoint {
  std::string host;
  uint16_t port = 0;
  // The user's original HOST:PORT spelling, for stats and diagnostics.
  std::string text;
};

// Parses "HOST:PORT". HOST may be a name, an IPv4 literal, or a bracketed
// IPv6 literal ("[::1]:7401" — the last ':' outside brackets splits).
// InvalidArgument on a missing/empty host, a missing ':', or a port that
// is not an integer in [1, 65535].
Result<WorkerEndpoint> ParseWorkerEndpoint(const std::string& text);

// Parses every endpoint or fails on the first bad one.
Result<std::vector<WorkerEndpoint>> ParseWorkerEndpoints(
    const std::vector<std::string>& texts);

}  // namespace qarm

#endif  // QARM_DIST_WORKER_REGISTRY_H_
