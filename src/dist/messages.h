// Message vocabulary of the coordinator <-> worker protocol, layered on
// dist/framing.h. The frame type carries the DistMessageType; payloads are
// encoded with the QBT little-endian helpers.
//
// Protocol (lockstep, one outstanding request per worker):
//   coordinator                      worker
//   ----------------------------------------------------------------
//   kPass1Request (empty)        ->
//                                <-  kPass1Reply (ShardSnapshot, QCPS)
//   kCatalog (QCP catalog bytes) ->                       (no reply)
//   kCountRequest                ->
//                                <-  kCountReply
//   ... one kCountRequest per pass ...
//   kShutdown (empty)            ->                       (worker exits)
//
// A worker that hits an unrecoverable error answers the request with
// kError (a status message) instead of the reply type; the coordinator
// fails the run rather than respawning — the respawned worker would hit
// the same error. A vanished worker (EOF/EPIPE) is respawned instead.
#ifndef QARM_DIST_MESSAGES_H_
#define QARM_DIST_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/support_counting.h"

namespace qarm {

enum class DistMessageType : uint32_t {
  kPass1Request = 1,
  kPass1Reply = 2,
  kCatalog = 3,
  kCountRequest = 4,
  kCountReply = 5,
  kShutdown = 6,
  kError = 7,
  // TCP sessions only (dist/handshake.h). A fork-mode worker inherits its
  // config through fork and never sees these.
  kHello = 8,     // coordinator -> worker: versioned DistWorkerConfig
  kHelloAck = 9,  // worker -> coordinator: identity echo + shard identity
  // Liveness while a long counting pass runs: the worker emits these
  // between request and reply so the coordinator's per-frame read deadline
  // measures peer health, not pass length. Never a reply; receivers skip.
  kHeartbeat = 10,
};

// One pass's candidates, coordinator -> worker. Pass 2 over a full L1
// frontier ships only the `implicit_pairs` flag — both sides hold the same
// catalog, so the worker derives C2 itself (an ImplicitPairStream) instead
// of receiving millions of ids. Later passes ship the materialized ids.
struct DistCountRequest {
  uint32_t k = 0;
  bool implicit_pairs = false;
  uint64_t num_candidates = 0;
  std::vector<int32_t> ids;  // k * num_candidates when !implicit_pairs
};

// One shard's counts, worker -> coordinator. `counts` is parallel to the
// request's candidate sequence; `stats` is the shard's CountingStats
// (summed/maxed into the pass stats by the coordinator).
struct DistCountReply {
  uint32_t worker_id = 0;
  std::vector<uint32_t> counts;
  CountingStats stats;
};

void EncodeCountRequest(const DistCountRequest& request, std::string* out);
Result<DistCountRequest> ParseCountRequest(const uint8_t* data, size_t size);

void EncodeCountReply(const DistCountReply& reply, std::string* out);
Result<DistCountReply> ParseCountReply(const uint8_t* data, size_t size);

}  // namespace qarm

#endif  // QARM_DIST_MESSAGES_H_
