#include "dist/handshake.h"

#include "common/string_util.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Minimal bounded little-endian reader (the messages.cc cursor, without
// the array readers the handshake does not need).
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : p_(data), remaining_(size) {}

  Result<uint32_t> ReadU32() {
    QARM_RETURN_NOT_OK(Need(4));
    const uint32_t v = QbtReadU32(p_);
    Advance(4);
    return v;
  }

  Result<uint64_t> ReadU64() {
    QARM_RETURN_NOT_OK(Need(8));
    const uint64_t v = QbtReadU64(p_);
    Advance(8);
    return v;
  }

  // Length-prefixed string: the length is checked against both the
  // caller's cap and the remaining payload BEFORE the string allocates.
  Result<std::string> ReadString(uint64_t max_bytes) {
    QARM_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
    if (len > max_bytes) {
      return Status::IOError(StrFormat(
          "handshake string of %llu bytes exceeds the %llu-byte cap",
          static_cast<unsigned long long>(len),
          static_cast<unsigned long long>(max_bytes)));
    }
    if (len > remaining_) {
      return Status::IOError("handshake payload truncated");
    }
    std::string out(reinterpret_cast<const char*>(p_),
                    static_cast<size_t>(len));
    Advance(static_cast<size_t>(len));
    return out;
  }

  size_t remaining() const { return remaining_; }

 private:
  Status Need(size_t n) {
    if (remaining_ < n) {
      return Status::IOError("handshake payload truncated");
    }
    return Status::OK();
  }

  void Advance(size_t n) {
    p_ += n;
    remaining_ -= n;
  }

  const uint8_t* p_;
  size_t remaining_;
};

Status CheckFullyConsumed(const Cursor& cursor) {
  if (cursor.remaining() != 0) {
    return Status::IOError(StrFormat(
        "handshake payload has %zu trailing bytes", cursor.remaining()));
  }
  return Status::OK();
}

// The version is the first field of both payloads so a mismatched peer is
// diagnosed before any version-dependent field is interpreted.
Status CheckVersion(uint32_t version) {
  if (version != kDistProtocolVersion) {
    return Status::InvalidArgument(StrFormat(
        "protocol version mismatch: peer speaks %u, this binary speaks %u",
        version, kDistProtocolVersion));
  }
  return Status::OK();
}

}  // namespace

void EncodeHello(const DistHello& hello, std::string* out) {
  QbtAppendU32(out, hello.version);
  QbtAppendU32(out, hello.worker_id);
  QbtAppendU64(out, hello.generation);
  QbtAppendU64(out, hello.block_begin);
  QbtAppendU64(out, hello.block_end);
  QbtAppendU64(out, hello.fingerprint);
  QbtAppendU64(out, hello.num_threads);
  QbtAppendU64(out, hello.counter_memory_budget_bytes);
  QbtAppendU64(out, hello.parallel_replication_budget_bytes);
  QbtAppendU64(out, hello.stream_block_rows);
  QbtAppendU64(out, hello.heartbeat_ms);
  QbtAppendU64(out, hello.io_timeout_ms);
  QbtAppendU64(out, hello.inject_faults_spec.size());
  out->append(hello.inject_faults_spec);
}

Result<DistHello> ParseHello(const uint8_t* data, size_t size) {
  Cursor cursor(data, size);
  DistHello hello;
  QARM_ASSIGN_OR_RETURN(hello.version, cursor.ReadU32());
  QARM_RETURN_NOT_OK(CheckVersion(hello.version));
  QARM_ASSIGN_OR_RETURN(hello.worker_id, cursor.ReadU32());
  QARM_ASSIGN_OR_RETURN(hello.generation, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.block_begin, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.block_end, cursor.ReadU64());
  if (hello.block_end < hello.block_begin) {
    return Status::IOError(StrFormat(
        "hello block range [%llu, %llu) is inverted",
        static_cast<unsigned long long>(hello.block_begin),
        static_cast<unsigned long long>(hello.block_end)));
  }
  QARM_ASSIGN_OR_RETURN(hello.fingerprint, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.num_threads, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.counter_memory_budget_bytes, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.parallel_replication_budget_bytes,
                        cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.stream_block_rows, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.heartbeat_ms, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.io_timeout_ms, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(hello.inject_faults_spec,
                        cursor.ReadString(kDistMaxFaultSpecBytes));
  QARM_RETURN_NOT_OK(CheckFullyConsumed(cursor));
  return hello;
}

void EncodeHelloAck(const DistHelloAck& ack, std::string* out) {
  QbtAppendU32(out, ack.version);
  QbtAppendU32(out, ack.worker_id);
  QbtAppendU64(out, ack.generation);
  QbtAppendU64(out, ack.fingerprint);
  QbtAppendU64(out, ack.num_rows);
  QbtAppendU64(out, ack.num_blocks);
  QbtAppendU32(out, ack.index_crc);
}

Result<DistHelloAck> ParseHelloAck(const uint8_t* data, size_t size) {
  Cursor cursor(data, size);
  DistHelloAck ack;
  QARM_ASSIGN_OR_RETURN(ack.version, cursor.ReadU32());
  QARM_RETURN_NOT_OK(CheckVersion(ack.version));
  QARM_ASSIGN_OR_RETURN(ack.worker_id, cursor.ReadU32());
  QARM_ASSIGN_OR_RETURN(ack.generation, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(ack.fingerprint, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(ack.num_rows, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(ack.num_blocks, cursor.ReadU64());
  QARM_ASSIGN_OR_RETURN(ack.index_crc, cursor.ReadU32());
  QARM_RETURN_NOT_OK(CheckFullyConsumed(cursor));
  return ack;
}

}  // namespace qarm
