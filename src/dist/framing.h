// Length-prefixed, CRC-framed messages over a dist/transport.h byte
// stream (the socketpair between the distributed-mining coordinator and a
// forked worker, or the TCP connection to a remote one). One frame:
//
//   [0]  u8[4]  magic "QDF1"
//   [4]  u32    message type (DistMessageType)
//   [8]  u64    payload_size
//   [16] ...    payload bytes
//   [..] u32    CRC-32 of the payload
//
// All integers little-endian (the QBT helpers). Over a local socketpair a
// CRC mismatch means a program bug; over TCP it additionally covers a
// connection that died mid-frame and got glued to garbage — either way the
// coordinator treats it like a dead worker. A clean EOF mid-frame surfaces
// as IOError (the peer died). SendFrame assembles the whole frame into one
// buffer and issues a single Transport::Write, so the fault injector's
// partial-write sabotage tears real frame boundaries.
#ifndef QARM_DIST_FRAMING_H_
#define QARM_DIST_FRAMING_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "dist/transport.h"

namespace qarm {

inline constexpr char kDistFrameMagic[4] = {'Q', 'D', 'F', '1'};
inline constexpr size_t kDistFrameHeaderSize = 4 + 4 + 8;

// Guard against a corrupt length prefix allocating the moon. Generous:
// the largest real payload is one pass's merged counts (a few MB).
inline constexpr uint64_t kDistMaxPayload = 1ull << 32;

struct DistFrame {
  uint32_t type = 0;
  std::string payload;
};

// Writes one frame. `bytes_sent`, when non-null, is incremented by the
// framed size (header + payload + CRC).
Status SendFrame(Transport& transport, uint32_t type,
                 const std::string& payload, uint64_t* bytes_sent = nullptr);

// Reads one frame, validating magic and CRC. EOF before any byte, EOF
// mid-frame, a read deadline, and CRC mismatch all return IOError — to the
// coordinator they mean the same thing (the worker is gone).
Result<DistFrame> RecvFrame(Transport& transport,
                            uint64_t* bytes_received = nullptr);

}  // namespace qarm

#endif  // QARM_DIST_FRAMING_H_
