#include "dist/worker.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/support_counting.h"
#include "dist/framing.h"
#include "dist/messages.h"
#include "storage/checkpoint_format.h"
#include "storage/fault_injection.h"

namespace qarm {
namespace {

// Serializes every frame the session writes: replies from the request
// handler and kHeartbeat frames from the liveness thread share one
// transport, and frames must never interleave mid-frame.
class SessionWriter {
 public:
  explicit SessionWriter(Transport& transport) : transport_(transport) {}

  Status Send(DistMessageType type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return SendFrame(transport_, static_cast<uint32_t>(type), payload);
  }

 private:
  Transport& transport_;
  std::mutex mu_;
};

// Scoped liveness: while a long scan runs, a helper thread emits a
// kHeartbeat frame every `interval_ms` so the coordinator's per-frame read
// deadline measures peer health rather than pass length. Destroyed (and
// joined) before the reply is sent. A failed heartbeat write just stops
// the thread — the handler's own reply send will surface the dead channel.
class HeartbeatGuard {
 public:
  HeartbeatGuard(SessionWriter& writer, uint64_t interval_ms) {
    if (interval_ms == 0) return;
    thread_ = std::thread([this, &writer, interval_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                         [this] { return stop_; })) {
          return;
        }
        lock.unlock();
        const Status sent = writer.Send(DistMessageType::kHeartbeat, "");
        lock.lock();
        if (!sent.ok()) return;
      }
    });
  }

  ~HeartbeatGuard() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

Result<std::string> HandlePass1(const DistWorkerConfig& config,
                                const RecordSource& shard) {
  ScanIoStats io;
  QARM_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> value_counts,
      ItemCatalog::ScanValueCounts(shard, config.options.num_threads, &io));
  ShardSnapshot snapshot;
  snapshot.fingerprint = config.fingerprint;
  snapshot.worker_id = config.worker_id;
  snapshot.block_begin = config.block_begin;
  snapshot.block_end = config.block_end;
  snapshot.num_rows = shard.num_rows();
  snapshot.value_counts = std::move(value_counts);
  snapshot.blocks_read = io.blocks_read;
  snapshot.bytes_read = io.bytes_read;
  snapshot.read_retries = io.read_retries;
  snapshot.faults_injected = io.faults_injected;
  std::string payload;
  EncodeShardSnapshot(snapshot, &payload);
  return payload;
}

Result<std::string> HandleCount(const DistWorkerConfig& config,
                                const RecordSource& shard,
                                const ItemCatalog* catalog,
                                const std::string& payload) {
  if (catalog == nullptr) {
    return Status::Internal("count request arrived before the catalog");
  }
  QARM_ASSIGN_OR_RETURN(DistCountRequest request,
                        ParseCountRequest(
                            reinterpret_cast<const uint8_t*>(payload.data()),
                            payload.size()));
  // Both stream shapes below must enumerate candidates in exactly the
  // coordinator's order: the reply's counts are matched back by position.
  ItemsetSet materialized(request.k);
  std::unique_ptr<CandidateStream> candidates;
  if (request.implicit_pairs) {
    if (request.k != 2) {
      return Status::Internal("implicit candidate stream requires k == 2");
    }
    candidates = std::make_unique<ImplicitPairStream>(*catalog);
  } else {
    materialized.Reserve(static_cast<size_t>(request.num_candidates));
    for (size_t c = 0; c < request.num_candidates; ++c) {
      materialized.Append(&request.ids[c * request.k]);
    }
    candidates = std::make_unique<ItemsetStreamView>(materialized);
  }
  if (candidates->size() != request.num_candidates) {
    return Status::Internal(
        "worker candidate count disagrees with the coordinator (catalog "
        "mismatch?)");
  }
  DistCountReply reply;
  reply.worker_id = config.worker_id;
  QARM_ASSIGN_OR_RETURN(reply.counts,
                        CountSupports(shard, *catalog, *candidates,
                                      config.options, &reply.stats));
  std::string out;
  EncodeCountReply(reply, &out);
  return out;
}

// Deterministic crash hooks for the respawn tests. The block-read fault
// injector can only kill a worker inside a shard scan; these environment
// switches kill a generation-0 worker in the catalog-broadcast window
// instead — either right after its pass-1 reply (so the coordinator's very
// next catalog SendFrame hits EOF inside PublishCatalog) or on receipt of
// the catalog frame before applying it (so the death surfaces at the first
// count request). Respawned incarnations (generation >= 1) ignore both.
bool TestExitHere(const DistWorkerConfig& config, const char* env) {
  return config.generation == 0 && std::getenv(env) != nullptr;
}

// A third hook for the TCP tests and the dist-tcp-smoke CI job: kill the
// worker *process* after handling N frames of a generation-0 session, the
// moral equivalent of `kill -9` landing mid-pass at a deterministic spot.
uint64_t TestExitAfterFrames() {
  const char* env = std::getenv("QARM_DIST_TEST_EXIT_AFTER_FRAMES");
  if (env == nullptr) return 0;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace

Status RunWorkerSession(Transport& transport, const DistWorkerConfig& config,
                        const RecordSource& file) {
  // Fault injection wraps the *full* source so block ids in the fault
  // schedule stay global — the same spec faults the same blocks whether the
  // run is single-process or sharded across any worker count. Only the
  // storage kinds apply here; network kinds live in the TCP transport.
  std::unique_ptr<FaultInjectingRecordSource> faulty;
  const RecordSource* full = &file;
  if (!config.options.inject_faults_spec.empty()) {
    QARM_ASSIGN_OR_RETURN(FaultInjectionConfig fault_config,
                          ParseFaultSpec(config.options.inject_faults_spec));
    if (StorageFaultKinds(fault_config.kinds) != 0) {
      fault_config.generation = config.generation;
      faulty =
          std::make_unique<FaultInjectingRecordSource>(file, fault_config);
      full = faulty.get();
    }
  }
  const BlockRangeSource shard(*full, config.block_begin, config.block_end);

  SessionWriter writer(transport);
  const uint64_t exit_after_frames = TestExitAfterFrames();
  uint64_t frames_handled = 0;
  std::optional<ItemCatalog> catalog;
  for (;;) {
    Result<DistFrame> frame = RecvFrame(transport);
    if (!frame.ok()) {
      // Coordinator gone (or the channel corrupted) — nothing to report to.
      return frame.status();
    }
    ++frames_handled;
    if (exit_after_frames > 0 && config.generation == 0 &&
        frames_handled >= exit_after_frames) {
      std::_Exit(137);  // mimic SIGKILL's 128+9 exit status
    }
    switch (static_cast<DistMessageType>(frame->type)) {
      case DistMessageType::kShutdown:
        return Status::OK();
      case DistMessageType::kPass1Request: {
        Result<std::string> reply{std::string()};
        {
          HeartbeatGuard liveness(writer, config.heartbeat_ms);
          reply = HandlePass1(config, shard);
        }
        const Status sent =
            reply.ok() ? writer.Send(DistMessageType::kPass1Reply, *reply)
                       : writer.Send(DistMessageType::kError,
                                     reply.status().ToString());
        (void)sent;
        if (reply.ok() &&
            TestExitHere(config, "QARM_DIST_TEST_EXIT_BEFORE_CATALOG")) {
          std::_Exit(1);
        }
        break;
      }
      case DistMessageType::kCatalog: {
        if (TestExitHere(config, "QARM_DIST_TEST_EXIT_ON_CATALOG")) {
          std::_Exit(1);
        }
        Result<CheckpointCatalog> parsed = ParseCheckpointCatalog(
            reinterpret_cast<const uint8_t*>(frame->payload.data()),
            frame->payload.size());
        Result<ItemCatalog> restored =
            parsed.ok() ? ItemCatalog::Restore(*full, *parsed)
                        : parsed.status();
        if (!restored.ok()) {
          const Status sent = writer.Send(DistMessageType::kError,
                                          restored.status().ToString());
          (void)sent;
          break;
        }
        // No reply: the coordinator pipelines the catalog broadcast with
        // the first count request.
        catalog.emplace(std::move(restored).value());
        break;
      }
      case DistMessageType::kCountRequest: {
        Result<std::string> reply{std::string()};
        {
          HeartbeatGuard liveness(writer, config.heartbeat_ms);
          reply = HandleCount(config, shard,
                              catalog.has_value() ? &*catalog : nullptr,
                              frame->payload);
        }
        const Status sent =
            reply.ok() ? writer.Send(DistMessageType::kCountReply, *reply)
                       : writer.Send(DistMessageType::kError,
                                     reply.status().ToString());
        (void)sent;
        break;
      }
      default: {
        const Status sent = writer.Send(
            DistMessageType::kError,
            Status::Internal("unexpected message type").ToString());
        (void)sent;
        break;
      }
    }
  }
}

int RunDistWorker(int fd, const DistWorkerConfig& config) {
  FdTransport transport(fd);
  Result<std::unique_ptr<QbtFileSource>> opened =
      QbtFileSource::Open(config.qbt_path);
  if (!opened.ok()) {
    const Status sent =
        SendFrame(transport, static_cast<uint32_t>(DistMessageType::kError),
                  opened.status().ToString());
    (void)sent;
    return 1;
  }
  const Status served = RunWorkerSession(transport, config, **opened);
  return served.ok() ? 0 : 1;
}

}  // namespace qarm
