#include "dist/worker.h"

#include <cstdlib>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/support_counting.h"
#include "dist/framing.h"
#include "dist/messages.h"
#include "storage/checkpoint_format.h"
#include "storage/fault_injection.h"
#include "storage/record_source.h"

namespace qarm {
namespace {

// Answers the current request with a kError frame carrying the status
// message. A failed send means the coordinator is gone; the caller's next
// RecvFrame will see the same and exit.
void SendError(int fd, const Status& status) {
  const Status sent = SendFrame(
      fd, static_cast<uint32_t>(DistMessageType::kError), status.ToString());
  (void)sent;
}

Status HandlePass1(int fd, const DistWorkerConfig& config,
                   const RecordSource& shard) {
  ScanIoStats io;
  QARM_ASSIGN_OR_RETURN(
      std::vector<std::vector<uint64_t>> value_counts,
      ItemCatalog::ScanValueCounts(shard, config.options.num_threads, &io));
  ShardSnapshot snapshot;
  snapshot.fingerprint = config.fingerprint;
  snapshot.worker_id = config.worker_id;
  snapshot.block_begin = config.block_begin;
  snapshot.block_end = config.block_end;
  snapshot.num_rows = shard.num_rows();
  snapshot.value_counts = std::move(value_counts);
  snapshot.blocks_read = io.blocks_read;
  snapshot.bytes_read = io.bytes_read;
  snapshot.read_retries = io.read_retries;
  snapshot.faults_injected = io.faults_injected;
  std::string payload;
  EncodeShardSnapshot(snapshot, &payload);
  return SendFrame(fd, static_cast<uint32_t>(DistMessageType::kPass1Reply),
                   payload);
}

Status HandleCount(int fd, const DistWorkerConfig& config,
                   const RecordSource& shard, const ItemCatalog* catalog,
                   const std::string& payload) {
  if (catalog == nullptr) {
    return Status::Internal("count request arrived before the catalog");
  }
  QARM_ASSIGN_OR_RETURN(DistCountRequest request,
                        ParseCountRequest(
                            reinterpret_cast<const uint8_t*>(payload.data()),
                            payload.size()));
  // Both stream shapes below must enumerate candidates in exactly the
  // coordinator's order: the reply's counts are matched back by position.
  ItemsetSet materialized(request.k);
  std::unique_ptr<CandidateStream> candidates;
  if (request.implicit_pairs) {
    if (request.k != 2) {
      return Status::Internal("implicit candidate stream requires k == 2");
    }
    candidates = std::make_unique<ImplicitPairStream>(*catalog);
  } else {
    materialized.Reserve(static_cast<size_t>(request.num_candidates));
    for (size_t c = 0; c < request.num_candidates; ++c) {
      materialized.Append(&request.ids[c * request.k]);
    }
    candidates = std::make_unique<ItemsetStreamView>(materialized);
  }
  if (candidates->size() != request.num_candidates) {
    return Status::Internal(
        "worker candidate count disagrees with the coordinator (catalog "
        "mismatch?)");
  }
  DistCountReply reply;
  reply.worker_id = config.worker_id;
  QARM_ASSIGN_OR_RETURN(reply.counts,
                        CountSupports(shard, *catalog, *candidates,
                                      config.options, &reply.stats));
  std::string out;
  EncodeCountReply(reply, &out);
  return SendFrame(fd, static_cast<uint32_t>(DistMessageType::kCountReply),
                   out);
}

// Deterministic crash hooks for the respawn tests. The block-read fault
// injector can only kill a worker inside a shard scan; these environment
// switches kill a generation-0 worker in the catalog-broadcast window
// instead — either right after its pass-1 reply (so the coordinator's very
// next catalog SendFrame hits EOF inside PublishCatalog) or on receipt of
// the catalog frame before applying it (so the death surfaces at the first
// count request). Respawned incarnations (generation >= 1) ignore both.
bool TestExitHere(const DistWorkerConfig& config, const char* env) {
  return config.generation == 0 && std::getenv(env) != nullptr;
}

}  // namespace

int RunDistWorker(int fd, const DistWorkerConfig& config) {
  Result<std::unique_ptr<QbtFileSource>> opened =
      QbtFileSource::Open(config.qbt_path);
  if (!opened.ok()) {
    SendError(fd, opened.status());
    return 1;
  }
  const QbtFileSource& file = **opened;

  // Fault injection wraps the *full* source so block ids in the fault
  // schedule stay global — the same spec faults the same blocks whether the
  // run is single-process or sharded across any worker count.
  std::unique_ptr<FaultInjectingRecordSource> faulty;
  const RecordSource* full = &file;
  if (!config.options.inject_faults_spec.empty()) {
    Result<FaultInjectionConfig> fault_config =
        ParseFaultSpec(config.options.inject_faults_spec);
    if (!fault_config.ok()) {
      SendError(fd, fault_config.status());
      return 1;
    }
    fault_config->generation = config.generation;
    faulty = std::make_unique<FaultInjectingRecordSource>(file, *fault_config);
    full = faulty.get();
  }
  const BlockRangeSource shard(*full, config.block_begin, config.block_end);

  std::optional<ItemCatalog> catalog;
  for (;;) {
    Result<DistFrame> frame = RecvFrame(fd);
    if (!frame.ok()) {
      // Coordinator gone (or the channel corrupted) — nothing to report to.
      return 1;
    }
    switch (static_cast<DistMessageType>(frame->type)) {
      case DistMessageType::kShutdown:
        return 0;
      case DistMessageType::kPass1Request: {
        const Status handled = HandlePass1(fd, config, shard);
        if (!handled.ok()) SendError(fd, handled);
        if (handled.ok() &&
            TestExitHere(config, "QARM_DIST_TEST_EXIT_BEFORE_CATALOG")) {
          std::_Exit(1);
        }
        break;
      }
      case DistMessageType::kCatalog: {
        if (TestExitHere(config, "QARM_DIST_TEST_EXIT_ON_CATALOG")) {
          std::_Exit(1);
        }
        Result<CheckpointCatalog> parsed = ParseCheckpointCatalog(
            reinterpret_cast<const uint8_t*>(frame->payload.data()),
            frame->payload.size());
        Result<ItemCatalog> restored =
            parsed.ok() ? ItemCatalog::Restore(*full, *parsed)
                        : parsed.status();
        if (!restored.ok()) {
          SendError(fd, restored.status());
          break;
        }
        // No reply: the coordinator pipelines the catalog broadcast with
        // the first count request.
        catalog.emplace(std::move(restored).value());
        break;
      }
      case DistMessageType::kCountRequest: {
        const Status handled =
            HandleCount(fd, config, shard,
                        catalog.has_value() ? &*catalog : nullptr,
                        frame->payload);
        if (!handled.ok()) SendError(fd, handled);
        break;
      }
      default:
        SendError(fd, Status::Internal("unexpected message type"));
        break;
    }
  }
}

}  // namespace qarm
