#include "dist/dist_miner.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidate_gen.h"
#include "core/mining_checkpoint.h"
#include "dist/coordinator.h"
#include "dist/worker_registry.h"
#include "storage/checkpoint_format.h"
#include "storage/record_source.h"

namespace qarm {
namespace {

// Folds the shards' counting stats into the pass's: structural fields
// (grouping, counter kinds, ISA) are identical across workers — every
// worker groups the same candidates under the same options — so worker 0
// speaks for all; I/O sums; wall times take the slowest shard.
void MergeCountingStats(const std::vector<DistCountReply>& replies,
                        CountingStats* stats) {
  if (stats == nullptr || replies.empty()) return;
  *stats = replies[0].stats;
  for (size_t w = 1; w < replies.size(); ++w) {
    const CountingStats& shard = replies[w].stats;
    stats->io.blocks_read += shard.io.blocks_read;
    stats->io.bytes_read += shard.io.bytes_read;
    stats->io.checksum_seconds += shard.io.checksum_seconds;
    stats->io.read_retries += shard.io.read_retries;
    stats->io.faults_injected += shard.io.faults_injected;
    stats->threads_used = std::max(stats->threads_used, shard.threads_used);
    stats->group_seconds = std::max(stats->group_seconds, shard.group_seconds);
    stats->build_seconds = std::max(stats->build_seconds, shard.build_seconds);
    stats->scan_seconds = std::max(stats->scan_seconds, shard.scan_seconds);
    stats->reduce_seconds =
        std::max(stats->reduce_seconds, shard.reduce_seconds);
  }
}

}  // namespace

Result<MiningResult> MineDistributedQbt(const std::string& qbt_path,
                                        const MinerOptions& options) {
  QARM_RETURN_NOT_OK(options.Validate());
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtFileSource> source,
                        QbtFileSource::Open(qbt_path));

  // TCP mode (endpoints listed) runs one worker per endpoint; fork mode
  // runs --workers processes. Either way a worker needs at least one
  // block. A one-worker forked "pool" would only add transport overhead to
  // an identical computation, so it runs in-process instead — but a single
  // TCP endpoint still mines remotely: that is the point of the flag.
  const bool tcp_mode = !options.worker_endpoints.empty();
  std::vector<WorkerEndpoint> endpoints;
  size_t effective = 0;
  if (tcp_mode) {
    QARM_ASSIGN_OR_RETURN(endpoints,
                          ParseWorkerEndpoints(options.worker_endpoints));
    effective = std::min(endpoints.size(), source->num_blocks());
  } else {
    const size_t requested =
        options.num_workers == 0 ? 1 : options.num_workers;
    effective = std::min(requested, source->num_blocks());
  }
  const QuantitativeRuleMiner miner(options);
  // Append-mode checkpoints must record which QBT blocks they cover so a
  // later incremental run can validate the file grew without rewriting
  // them. Harmless (all-zero) otherwise.
  CheckpointBaseInfo base_info;
  if (options.append_mode) {
    base_info.num_blocks = source->num_blocks();
    base_info.index_crc =
        source->reader().IndexPrefixCrc(source->num_blocks());
  }
  if (effective == 0 || (effective == 1 && !tcp_mode)) {
    MiningHooks base_hooks;
    base_hooks.checkpoint_base = base_info;
    return miner.MineStreamed(*source, base_hooks);
  }

  DistWorkerConfig base;
  base.qbt_path = qbt_path;
  base.options = options;
  base.fingerprint = ComputeMiningFingerprint(options, *source);
  const std::vector<IndexRange> shards =
      SplitRange(source->num_blocks(), effective);
  std::unique_ptr<DistWorkerPool> pool;
  if (tcp_mode) {
    DistTcpOptions tcp;
    tcp.endpoints = std::move(endpoints);
    tcp.io_timeout_ms = options.dist_io_timeout_ms;
    tcp.heartbeat_ms = options.dist_heartbeat_ms;
    tcp.connect_attempts = options.dist_connect_attempts;
    tcp.connect_backoff_ms = options.dist_connect_backoff_ms;
    tcp.expected_num_rows = source->num_rows();
    tcp.expected_num_blocks = source->num_blocks();
    tcp.expected_index_crc =
        source->reader().IndexPrefixCrc(source->num_blocks());
    QARM_ASSIGN_OR_RETURN(pool, DistWorkerPool::Connect(base, shards, tcp));
  } else {
    QARM_ASSIGN_OR_RETURN(pool, DistWorkerPool::Start(base, shards));
  }

  DistRunStats dist;
  dist.num_workers = pool->num_workers();
  const size_t num_attributes = source->num_attributes();
  const uint64_t num_rows = source->num_rows();

  MiningHooks hooks;
  hooks.checkpoint_base = base_info;
  hooks.scan_value_counts =
      [&](ScanIoStats* io) -> Result<std::vector<std::vector<uint64_t>>> {
    DistPassStats pass;
    pass.k = 1;
    QARM_ASSIGN_OR_RETURN(std::vector<ShardSnapshot> snapshots,
                          pool->ScanShards(&pass));
    Timer merge_timer;
    uint64_t total_rows = 0;
    std::vector<std::vector<uint64_t>> merged;
    for (size_t w = 0; w < snapshots.size(); ++w) {
      ShardSnapshot& snapshot = snapshots[w];
      if (snapshot.value_counts.size() != num_attributes) {
        return Status::Internal(StrFormat(
            "worker %zu returned counts for %zu attributes, expected %zu",
            w, snapshot.value_counts.size(), num_attributes));
      }
      total_rows += snapshot.num_rows;
      if (io != nullptr) {
        io->blocks_read += snapshot.blocks_read;
        io->bytes_read += snapshot.bytes_read;
        io->read_retries += snapshot.read_retries;
        io->faults_injected += snapshot.faults_injected;
      }
      if (w == 0) {
        merged = std::move(snapshot.value_counts);
        continue;
      }
      for (size_t a = 0; a < num_attributes; ++a) {
        const std::vector<uint64_t>& shard_counts = snapshot.value_counts[a];
        std::vector<uint64_t>& total = merged[a];
        if (shard_counts.size() != total.size()) {
          return Status::Internal(StrFormat(
              "worker %zu disagrees on the domain size of attribute %zu",
              w, a));
        }
        for (size_t v = 0; v < total.size(); ++v) {
          total[v] += shard_counts[v];
        }
      }
    }
    if (total_rows != num_rows) {
      return Status::Internal(StrFormat(
          "shards scanned %llu rows, table has %llu",
          static_cast<unsigned long long>(total_rows),
          static_cast<unsigned long long>(num_rows)));
    }
    pass.merge_seconds = merge_timer.ElapsedSeconds();
    dist.passes.push_back(pass);
    return merged;
  };

  hooks.publish_catalog = [&](const ItemCatalog& catalog,
                              bool /*restored*/) -> Status {
    std::string payload;
    EncodeCheckpointCatalog(catalog.Snapshot(), &payload);
    // Attribute the broadcast to pass 1 when it exists (fresh run); a
    // resumed run restored the catalog without a pass-1 exchange, so the
    // broadcast gets its own k = 1 entry.
    if (dist.passes.empty()) {
      DistPassStats pass;
      pass.k = 1;
      QARM_RETURN_NOT_OK(pool->PublishCatalog(std::move(payload), &pass));
      dist.passes.push_back(pass);
      return Status::OK();
    }
    return pool->PublishCatalog(std::move(payload), &dist.passes.front());
  };

  hooks.count_supports =
      [&](const CandidateStream& candidates,
          CountingStats* stats) -> Result<std::vector<uint32_t>> {
    DistCountRequest request;
    request.k = static_cast<uint32_t>(candidates.k());
    request.num_candidates = candidates.size();
    // Pass 2's implicit cross product ships as a flag — both sides derive
    // the same C2 from the shared catalog instead of moving millions of
    // ids over the pipe.
    if (dynamic_cast<const ImplicitPairStream*>(&candidates) != nullptr) {
      request.implicit_pairs = true;
    } else {
      request.ids.reserve(candidates.size() * candidates.k());
      candidates.ForEachChunk([&](size_t /*first*/, const ItemsetSet& chunk) {
        for (size_t i = 0; i < chunk.size(); ++i) {
          const int32_t* ids = chunk.itemset(i);
          request.ids.insert(request.ids.end(), ids, ids + chunk.k());
        }
      });
    }
    DistPassStats pass;
    pass.k = request.k;
    QARM_ASSIGN_OR_RETURN(std::vector<DistCountReply> replies,
                          pool->CountShards(request, &pass));
    Timer merge_timer;
    std::vector<uint32_t> counts(candidates.size(), 0);
    for (size_t w = 0; w < replies.size(); ++w) {
      if (replies[w].counts.size() != counts.size()) {
        return Status::Internal(StrFormat(
            "worker %zu returned %zu counts for %zu candidates", w,
            replies[w].counts.size(), counts.size()));
      }
      // Exact integer sums in fixed worker order: bit-identical merges at
      // any worker count.
      for (size_t c = 0; c < counts.size(); ++c) {
        counts[c] += replies[w].counts[c];
      }
    }
    MergeCountingStats(replies, stats);
    pass.merge_seconds = merge_timer.ElapsedSeconds();
    dist.passes.push_back(pass);
    return counts;
  };

  Result<MiningResult> result = miner.MineStreamed(*source, hooks);
  if (result.ok()) {
    dist.workers_respawned = pool->workers_respawned();
    dist.workers = pool->WorkerStats();
    result->stats.dist = std::move(dist);
  }
  return result;
}

}  // namespace qarm
