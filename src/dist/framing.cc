#include "dist/framing.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "common/string_util.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Writes all of [data, data+size), retrying EINTR and short writes.
// MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE; fds that
// are not sockets (tests over plain pipes) fall back to write().
Status WriteFull(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, p, remaining);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("frame write failed: %s", std::strerror(errno)));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads exactly `size` bytes; EOF partway through is an error. `any_read`
// distinguishes "peer closed between frames" from "peer died mid-frame" in
// the message, though callers treat both as a dead worker.
Status ReadFull(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::read(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("frame read failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IOError("peer closed the channel (EOF)");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(int fd, uint32_t type, const std::string& payload,
                 uint64_t* bytes_sent) {
  std::string header;
  header.reserve(kDistFrameHeaderSize);
  header.append(kDistFrameMagic, 4);
  QbtAppendU32(&header, type);
  QbtAppendU64(&header, payload.size());
  QARM_RETURN_NOT_OK(WriteFull(fd, header.data(), header.size()));
  QARM_RETURN_NOT_OK(WriteFull(fd, payload.data(), payload.size()));
  std::string tail;
  QbtAppendU32(&tail, Crc32(payload.data(), payload.size()));
  QARM_RETURN_NOT_OK(WriteFull(fd, tail.data(), tail.size()));
  if (bytes_sent != nullptr) {
    *bytes_sent += kDistFrameHeaderSize + payload.size() + 4;
  }
  return Status::OK();
}

Result<DistFrame> RecvFrame(int fd, uint64_t* bytes_received) {
  uint8_t header[kDistFrameHeaderSize];
  QARM_RETURN_NOT_OK(ReadFull(fd, header, sizeof(header)));
  if (std::memcmp(header, kDistFrameMagic, 4) != 0) {
    return Status::IOError("bad frame magic");
  }
  DistFrame frame;
  frame.type = QbtReadU32(header + 4);
  const uint64_t payload_size = QbtReadU64(header + 8);
  if (payload_size > kDistMaxPayload) {
    return Status::IOError(
        StrFormat("frame payload size %llu exceeds limit",
                  static_cast<unsigned long long>(payload_size)));
  }
  frame.payload.resize(payload_size);
  if (payload_size > 0) {
    QARM_RETURN_NOT_OK(ReadFull(fd, frame.payload.data(), payload_size));
  }
  uint8_t crc_bytes[4];
  QARM_RETURN_NOT_OK(ReadFull(fd, crc_bytes, sizeof(crc_bytes)));
  const uint32_t expected = QbtReadU32(crc_bytes);
  const uint32_t actual = Crc32(frame.payload.data(), frame.payload.size());
  if (expected != actual) {
    return Status::IOError(StrFormat(
        "frame payload CRC mismatch (stored %08x, computed %08x)", expected,
        actual));
  }
  if (bytes_received != nullptr) {
    *bytes_received += kDistFrameHeaderSize + payload_size + 4;
  }
  return frame;
}

}  // namespace qarm
