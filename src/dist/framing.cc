#include "dist/framing.h"

#include <cstring>

#include "common/string_util.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Reads exactly `size` bytes, looping over the transport's partial reads.
// EOF partway through is an error: the peer died mid-frame.
Status ReadFull(Transport& transport, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    size_t n = 0;
    QARM_RETURN_NOT_OK(transport.Read(p, remaining, &n));
    if (n == 0) {
      return Status::IOError("peer closed the channel (EOF)");
    }
    p += n;
    remaining -= n;
  }
  return Status::OK();
}

}  // namespace

Status SendFrame(Transport& transport, uint32_t type,
                 const std::string& payload, uint64_t* bytes_sent) {
  // One buffer, one write: the frame either lands whole or the transport
  // reports the failure for this frame — and the injected partial-write
  // fault can tear it mid-frame the way a real crash would.
  std::string frame;
  frame.reserve(kDistFrameHeaderSize + payload.size() + 4);
  frame.append(kDistFrameMagic, 4);
  QbtAppendU32(&frame, type);
  QbtAppendU64(&frame, payload.size());
  frame.append(payload);
  QbtAppendU32(&frame, Crc32(payload.data(), payload.size()));
  QARM_RETURN_NOT_OK(transport.Write(frame.data(), frame.size()));
  if (bytes_sent != nullptr) {
    *bytes_sent += frame.size();
  }
  return Status::OK();
}

Result<DistFrame> RecvFrame(Transport& transport, uint64_t* bytes_received) {
  uint8_t header[kDistFrameHeaderSize];
  QARM_RETURN_NOT_OK(ReadFull(transport, header, sizeof(header)));
  if (std::memcmp(header, kDistFrameMagic, 4) != 0) {
    return Status::IOError("bad frame magic");
  }
  DistFrame frame;
  frame.type = QbtReadU32(header + 4);
  const uint64_t payload_size = QbtReadU64(header + 8);
  if (payload_size > kDistMaxPayload) {
    return Status::IOError(
        StrFormat("frame payload size %llu exceeds limit",
                  static_cast<unsigned long long>(payload_size)));
  }
  frame.payload.resize(payload_size);
  if (payload_size > 0) {
    QARM_RETURN_NOT_OK(
        ReadFull(transport, frame.payload.data(), payload_size));
  }
  uint8_t crc_bytes[4];
  QARM_RETURN_NOT_OK(ReadFull(transport, crc_bytes, sizeof(crc_bytes)));
  const uint32_t expected = QbtReadU32(crc_bytes);
  const uint32_t actual = Crc32(frame.payload.data(), frame.payload.size());
  if (expected != actual) {
    return Status::IOError(StrFormat(
        "frame payload CRC mismatch (stored %08x, computed %08x)", expected,
        actual));
  }
  if (bytes_received != nullptr) {
    *bytes_received += kDistFrameHeaderSize + payload_size + 4;
  }
  return frame;
}

}  // namespace qarm
