#include "dist/messages.h"

#include "common/string_util.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Bounded little-endian reader (the checkpoint reader's cursor pattern):
// every read checks the remaining size first, so a truncated or hostile
// payload surfaces as IOError instead of an out-of-bounds read.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : p_(data), remaining_(size) {}

  Result<uint32_t> ReadU32() {
    QARM_RETURN_NOT_OK(Need(4));
    const uint32_t v = QbtReadU32(p_);
    Advance(4);
    return v;
  }

  Result<uint64_t> ReadU64() {
    QARM_RETURN_NOT_OK(Need(8));
    const uint64_t v = QbtReadU64(p_);
    Advance(8);
    return v;
  }

  Result<double> ReadF64() {
    QARM_RETURN_NOT_OK(Need(8));
    const double v = QbtReadF64(p_);
    Advance(8);
    return v;
  }

  Status ReadI32Array(size_t count, std::vector<int32_t>* out) {
    QARM_RETURN_NOT_OK(NeedCount(count, 4));
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = QbtReadI32(p_ + i * 4);
    }
    Advance(count * 4);
    return Status::OK();
  }

  Status ReadU32Array(size_t count, std::vector<uint32_t>* out) {
    QARM_RETURN_NOT_OK(NeedCount(count, 4));
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = QbtReadU32(p_ + i * 4);
    }
    Advance(count * 4);
    return Status::OK();
  }

  size_t remaining() const { return remaining_; }

 private:
  Status Need(size_t n) {
    if (remaining_ < n) {
      return Status::IOError("message payload truncated");
    }
    return Status::OK();
  }

  // Overflow-safe `count * elem_size <= remaining`.
  Status NeedCount(size_t count, size_t elem_size) {
    if (count > remaining_ / elem_size) {
      return Status::IOError(
          StrFormat("message element count %zu exceeds payload", count));
    }
    return Status::OK();
  }

  void Advance(size_t n) {
    p_ += n;
    remaining_ -= n;
  }

  const uint8_t* p_;
  size_t remaining_;
};

Status CheckFullyConsumed(const Cursor& cursor) {
  if (cursor.remaining() != 0) {
    return Status::IOError(StrFormat(
        "message payload has %zu trailing bytes", cursor.remaining()));
  }
  return Status::OK();
}

void AppendIoStats(const ScanIoStats& io, std::string* out) {
  QbtAppendU64(out, io.blocks_read);
  QbtAppendU64(out, io.bytes_read);
  QbtAppendF64(out, io.checksum_seconds);
  QbtAppendU64(out, io.read_retries);
  QbtAppendU64(out, io.faults_injected);
}

Status ParseIoStats(Cursor* cursor, ScanIoStats* io) {
  QARM_ASSIGN_OR_RETURN(io->blocks_read, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(io->bytes_read, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(io->checksum_seconds, cursor->ReadF64());
  QARM_ASSIGN_OR_RETURN(io->read_retries, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(io->faults_injected, cursor->ReadU64());
  return Status::OK();
}

void AppendCountingStats(const CountingStats& stats, std::string* out) {
  QbtAppendU64(out, stats.num_super_candidates);
  QbtAppendU64(out, stats.num_array_counters);
  QbtAppendU64(out, stats.num_tree_counters);
  QbtAppendU64(out, stats.num_direct);
  QbtAppendU64(out, stats.num_degraded);
  QbtAppendU64(out, stats.num_atomic_shared);
  QbtAppendU64(out, stats.threads_used);
  QbtAppendU32(out, static_cast<uint32_t>(stats.isa));
  QbtAppendU64(out, stats.num_kernel_groups);
  QbtAppendU64(out, stats.num_hash_groups);
  AppendIoStats(stats.io, out);
  QbtAppendU64(out, stats.counter_bytes);
  QbtAppendU64(out, stats.replicated_bytes);
  QbtAppendF64(out, stats.group_seconds);
  QbtAppendF64(out, stats.build_seconds);
  QbtAppendF64(out, stats.scan_seconds);
  QbtAppendF64(out, stats.reduce_seconds);
}

Status ParseCountingStats(Cursor* cursor, CountingStats* stats) {
  QARM_ASSIGN_OR_RETURN(stats->num_super_candidates, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_array_counters, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_tree_counters, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_direct, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_degraded, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_atomic_shared, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->threads_used, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(uint32_t isa, cursor->ReadU32());
  stats->isa = static_cast<SimdIsa>(isa);
  QARM_ASSIGN_OR_RETURN(stats->num_kernel_groups, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->num_hash_groups, cursor->ReadU64());
  QARM_RETURN_NOT_OK(ParseIoStats(cursor, &stats->io));
  QARM_ASSIGN_OR_RETURN(stats->counter_bytes, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->replicated_bytes, cursor->ReadU64());
  QARM_ASSIGN_OR_RETURN(stats->group_seconds, cursor->ReadF64());
  QARM_ASSIGN_OR_RETURN(stats->build_seconds, cursor->ReadF64());
  QARM_ASSIGN_OR_RETURN(stats->scan_seconds, cursor->ReadF64());
  QARM_ASSIGN_OR_RETURN(stats->reduce_seconds, cursor->ReadF64());
  return Status::OK();
}

}  // namespace

void EncodeCountRequest(const DistCountRequest& request, std::string* out) {
  QbtAppendU32(out, request.k);
  QbtAppendU32(out, request.implicit_pairs ? 1 : 0);
  QbtAppendU64(out, request.num_candidates);
  if (!request.implicit_pairs) {
    for (int32_t id : request.ids) QbtAppendI32(out, id);
  }
}

Result<DistCountRequest> ParseCountRequest(const uint8_t* data, size_t size) {
  Cursor cursor(data, size);
  DistCountRequest request;
  QARM_ASSIGN_OR_RETURN(request.k, cursor.ReadU32());
  QARM_ASSIGN_OR_RETURN(uint32_t implicit, cursor.ReadU32());
  request.implicit_pairs = implicit != 0;
  QARM_ASSIGN_OR_RETURN(request.num_candidates, cursor.ReadU64());
  if (request.k == 0) {
    return Status::IOError("count request has k == 0");
  }
  if (!request.implicit_pairs) {
    if (request.num_candidates >
        cursor.remaining() / (4 * static_cast<size_t>(request.k))) {
      return Status::IOError("count request ids exceed payload");
    }
    QARM_RETURN_NOT_OK(cursor.ReadI32Array(
        static_cast<size_t>(request.num_candidates) * request.k,
        &request.ids));
  }
  QARM_RETURN_NOT_OK(CheckFullyConsumed(cursor));
  return request;
}

void EncodeCountReply(const DistCountReply& reply, std::string* out) {
  QbtAppendU32(out, reply.worker_id);
  QbtAppendU64(out, reply.counts.size());
  for (uint32_t c : reply.counts) QbtAppendU32(out, c);
  AppendCountingStats(reply.stats, out);
}

Result<DistCountReply> ParseCountReply(const uint8_t* data, size_t size) {
  Cursor cursor(data, size);
  DistCountReply reply;
  QARM_ASSIGN_OR_RETURN(reply.worker_id, cursor.ReadU32());
  QARM_ASSIGN_OR_RETURN(uint64_t num_counts, cursor.ReadU64());
  QARM_RETURN_NOT_OK(
      cursor.ReadU32Array(static_cast<size_t>(num_counts), &reply.counts));
  QARM_RETURN_NOT_OK(ParseCountingStats(&cursor, &reply.stats));
  QARM_RETURN_NOT_OK(CheckFullyConsumed(cursor));
  return reply;
}

}  // namespace qarm
