#include "dist/coordinator.h"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dist/framing.h"

namespace qarm {

Result<std::unique_ptr<DistWorkerPool>> DistWorkerPool::Start(
    const DistWorkerConfig& base, const std::vector<IndexRange>& shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("worker pool needs at least one shard");
  }
  // No public constructor, so no make_unique.
  std::unique_ptr<DistWorkerPool> pool(new DistWorkerPool());
  pool->workers_.resize(shards.size());
  for (size_t w = 0; w < shards.size(); ++w) {
    Worker& worker = pool->workers_[w];
    worker.config = base;
    worker.config.worker_id = static_cast<uint32_t>(w);
    worker.config.generation = 0;
    worker.config.block_begin = shards[w].begin;
    worker.config.block_end = shards[w].end;
    QARM_RETURN_NOT_OK(pool->Fork(w));
  }
  return pool;
}

DistWorkerPool::~DistWorkerPool() {
  for (Worker& worker : workers_) {
    if (worker.fd >= 0) {
      // Best-effort clean shutdown; the close right after guarantees the
      // worker sees EOF and exits even if the frame never lands.
      const Status sent =
          SendFrame(worker.fd,
                    static_cast<uint32_t>(DistMessageType::kShutdown), "");
      (void)sent;
      ::close(worker.fd);
      worker.fd = -1;
    }
  }
  for (Worker& worker : workers_) {
    if (worker.pid > 0) {
      int wstatus = 0;
      ::waitpid(worker.pid, &wstatus, 0);
      worker.pid = -1;
    }
  }
}

Status DistWorkerPool::Fork(size_t w) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError("socketpair failed for worker channel");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError("fork failed for distributed worker");
  }
  if (pid == 0) {
    // Child: drop the coordinator end and every sibling channel, then serve
    // requests until shutdown. _Exit skips the coordinator's atexit state —
    // this process must never run coordinator teardown.
    ::close(fds[0]);
    for (const Worker& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    std::_Exit(RunDistWorker(fds[1], workers_[w].config));
  }
  ::close(fds[1]);
  workers_[w].fd = fds[0];
  workers_[w].pid = pid;
  return Status::OK();
}

Status DistWorkerPool::RespawnAndReplay(size_t w,
                                        DistMessageType request_type,
                                        const std::string& request_payload,
                                        DistPassStats* stats) {
  Worker& worker = workers_[w];
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  if (worker.pid > 0) {
    int wstatus = 0;
    ::waitpid(worker.pid, &wstatus, 0);
    worker.pid = -1;
  }
  if (worker.config.generation >= kMaxRespawnsPerWorker) {
    return Status::IOError(StrFormat(
        "worker %u died %zu times; giving up",
        worker.config.worker_id, static_cast<size_t>(kMaxRespawnsPerWorker)));
  }
  ++worker.config.generation;
  ++workers_respawned_;
  QARM_LOG(Warning) << "distributed worker " << worker.config.worker_id
                    << " died; respawning (generation "
                    << worker.config.generation << ") and replaying blocks ["
                    << worker.config.block_begin << ", "
                    << worker.config.block_end << ")";
  QARM_RETURN_NOT_OK(Fork(w));
  uint64_t* sent = stats != nullptr ? &stats->bytes_sent : nullptr;
  // Replay: the catalog (when one was published) restores the worker's only
  // cross-request state, then the in-flight request re-runs its shard scan.
  // A worker that died during the catalog broadcast itself has the catalog
  // AS its in-flight request — send it once, not as both the state replay
  // and the request (the duplicate doubled the replay bytes for nothing).
  if (!catalog_payload_.empty() &&
      request_type != DistMessageType::kCatalog) {
    QARM_RETURN_NOT_OK(
        SendFrame(worker.fd, static_cast<uint32_t>(DistMessageType::kCatalog),
                  catalog_payload_, sent));
  }
  return SendFrame(worker.fd, static_cast<uint32_t>(request_type),
                   request_payload, sent);
}

Status DistWorkerPool::SendToWorker(size_t w, DistMessageType type,
                                    const std::string& payload,
                                    DistPassStats* stats) {
  uint64_t* sent = stats != nullptr ? &stats->bytes_sent : nullptr;
  const Status status = SendFrame(workers_[w].fd,
                                  static_cast<uint32_t>(type), payload, sent);
  if (status.ok()) return status;
  // The worker died between requests; the replay resends this request.
  return RespawnAndReplay(w, type, payload, stats);
}

Status DistWorkerPool::ReceiveReply(size_t w, DistMessageType request_type,
                                    const std::string& request_payload,
                                    DistMessageType reply_type,
                                    DistPassStats* stats,
                                    std::string* reply_payload) {
  for (;;) {
    uint64_t* received = stats != nullptr ? &stats->bytes_received : nullptr;
    Result<DistFrame> frame = RecvFrame(workers_[w].fd, received);
    if (frame.ok()) {
      if (frame->type == static_cast<uint32_t>(reply_type)) {
        *reply_payload = std::move(frame->payload);
        return Status::OK();
      }
      if (frame->type == static_cast<uint32_t>(DistMessageType::kError)) {
        // A clean worker-side failure is deterministic; do not respawn.
        return Status::IOError(StrFormat("worker %u failed: %s",
                                         workers_[w].config.worker_id,
                                         frame->payload.c_str()));
      }
      return Status::Internal(
          StrFormat("unexpected reply type %u from worker %u", frame->type,
                    workers_[w].config.worker_id));
    }
    // Transport failure: the worker process is gone. Respawn, replay, and
    // wait for the fresh incarnation's reply (budget enforced inside).
    QARM_RETURN_NOT_OK(
        RespawnAndReplay(w, request_type, request_payload, stats));
  }
}

Result<std::vector<std::string>> DistWorkerPool::Exchange(
    DistMessageType request_type, const std::string& payload,
    DistMessageType reply_type, DistPassStats* stats) {
  Timer timer;
  // Fan the request out to every worker before reading any reply, so the
  // shards count concurrently; then collect strictly in worker order.
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(SendToWorker(w, request_type, payload, stats));
  }
  std::vector<std::string> replies(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(ReceiveReply(w, request_type, payload, reply_type,
                                    stats, &replies[w]));
  }
  if (stats != nullptr) stats->exchange_seconds += timer.ElapsedSeconds();
  return replies;
}

Result<std::vector<ShardSnapshot>> DistWorkerPool::ScanShards(
    DistPassStats* stats) {
  QARM_ASSIGN_OR_RETURN(
      std::vector<std::string> replies,
      Exchange(DistMessageType::kPass1Request, "",
               DistMessageType::kPass1Reply, stats));
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(replies.size());
  for (size_t w = 0; w < replies.size(); ++w) {
    QARM_ASSIGN_OR_RETURN(
        ShardSnapshot snapshot,
        ParseShardSnapshot(
            reinterpret_cast<const uint8_t*>(replies[w].data()),
            replies[w].size()));
    const Worker& worker = workers_[w];
    if (snapshot.worker_id != worker.config.worker_id ||
        snapshot.fingerprint != worker.config.fingerprint ||
        snapshot.block_begin != worker.config.block_begin ||
        snapshot.block_end != worker.config.block_end) {
      return Status::Internal(StrFormat(
          "shard snapshot from worker %u does not match its assignment",
          worker.config.worker_id));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

Status DistWorkerPool::PublishCatalog(std::string payload,
                                      DistPassStats* stats) {
  catalog_payload_ = std::move(payload);
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(SendToWorker(w, DistMessageType::kCatalog,
                                    catalog_payload_, stats));
  }
  return Status::OK();
}

Result<std::vector<DistCountReply>> DistWorkerPool::CountShards(
    const DistCountRequest& request, DistPassStats* stats) {
  std::string payload;
  EncodeCountRequest(request, &payload);
  QARM_ASSIGN_OR_RETURN(std::vector<std::string> replies,
                        Exchange(DistMessageType::kCountRequest, payload,
                                 DistMessageType::kCountReply, stats));
  std::vector<DistCountReply> parsed;
  parsed.reserve(replies.size());
  for (size_t w = 0; w < replies.size(); ++w) {
    QARM_ASSIGN_OR_RETURN(
        DistCountReply reply,
        ParseCountReply(reinterpret_cast<const uint8_t*>(replies[w].data()),
                        replies[w].size()));
    if (reply.worker_id != workers_[w].config.worker_id) {
      return Status::Internal("count reply arrived out of worker order");
    }
    parsed.push_back(std::move(reply));
  }
  return parsed;
}

}  // namespace qarm
