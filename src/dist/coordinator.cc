#include "dist/coordinator.h"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dist/framing.h"
#include "dist/handshake.h"

namespace qarm {
namespace {

Status SendOn(Transport& transport, DistMessageType type,
              const std::string& payload, uint64_t* bytes_sent) {
  return SendFrame(transport, static_cast<uint32_t>(type), payload,
                   bytes_sent);
}

}  // namespace

Result<std::unique_ptr<DistWorkerPool>> DistWorkerPool::Start(
    const DistWorkerConfig& base, const std::vector<IndexRange>& shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("worker pool needs at least one shard");
  }
  // No public constructor, so no make_unique.
  std::unique_ptr<DistWorkerPool> pool(new DistWorkerPool());
  pool->workers_.resize(shards.size());
  for (size_t w = 0; w < shards.size(); ++w) {
    Worker& worker = pool->workers_[w];
    worker.config = base;
    worker.config.worker_id = static_cast<uint32_t>(w);
    worker.config.generation = 0;
    worker.config.block_begin = shards[w].begin;
    worker.config.block_end = shards[w].end;
    worker.stats.worker_id = worker.config.worker_id;
    QARM_RETURN_NOT_OK(pool->Fork(w));
  }
  return pool;
}

Result<std::unique_ptr<DistWorkerPool>> DistWorkerPool::Connect(
    const DistWorkerConfig& base, const std::vector<IndexRange>& shards,
    const DistTcpOptions& tcp) {
  if (shards.empty()) {
    return Status::InvalidArgument("worker pool needs at least one shard");
  }
  if (shards.size() > tcp.endpoints.size()) {
    return Status::InvalidArgument(StrFormat(
        "%zu shards need at least as many worker endpoints, got %zu",
        shards.size(), tcp.endpoints.size()));
  }
  std::unique_ptr<DistWorkerPool> pool(new DistWorkerPool());
  pool->tcp_mode_ = true;
  pool->tcp_ = tcp;
  pool->workers_.resize(shards.size());
  for (size_t w = 0; w < shards.size(); ++w) {
    Worker& worker = pool->workers_[w];
    worker.config = base;
    worker.config.worker_id = static_cast<uint32_t>(w);
    worker.config.generation = 0;
    worker.config.block_begin = shards[w].begin;
    worker.config.block_end = shards[w].end;
    worker.config.heartbeat_ms = tcp.heartbeat_ms;
    worker.endpoint = w;
    worker.stats.worker_id = worker.config.worker_id;
    QARM_RETURN_NOT_OK(pool->ConnectWorker(w));
  }
  return pool;
}

DistWorkerPool::~DistWorkerPool() {
  for (Worker& worker : workers_) {
    if (worker.transport != nullptr) {
      // Best-effort clean shutdown; the close right after guarantees the
      // worker sees EOF and ends the session even if the frame never
      // lands.
      const Status sent =
          SendOn(*worker.transport, DistMessageType::kShutdown, "", nullptr);
      (void)sent;
      worker.transport->Close();
      worker.transport.reset();
    }
  }
  for (Worker& worker : workers_) {
    if (worker.pid > 0) {
      int wstatus = 0;
      ::waitpid(worker.pid, &wstatus, 0);
      worker.pid = -1;
    }
  }
}

std::vector<DistWorkerStats> DistWorkerPool::WorkerStats() const {
  std::vector<DistWorkerStats> stats;
  stats.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    stats.push_back(worker.stats);
  }
  return stats;
}

Status DistWorkerPool::Fork(size_t w) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError("socketpair failed for worker channel");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IOError("fork failed for distributed worker");
  }
  if (pid == 0) {
    // Child: drop the coordinator end and every sibling channel, then serve
    // requests until shutdown. _Exit skips the coordinator's atexit state —
    // this process must never run coordinator teardown.
    ::close(fds[0]);
    for (const Worker& other : workers_) {
      if (other.transport != nullptr) other.transport->Close();
    }
    std::_Exit(RunDistWorker(fds[1], workers_[w].config));
  }
  ::close(fds[1]);
  workers_[w].transport = std::make_unique<FdTransport>(fds[0]);
  workers_[w].pid = pid;
  return Status::OK();
}

Status DistWorkerPool::ConnectWorker(size_t w) {
  Worker& worker = workers_[w];
  worker.transport.reset();
  RetryPolicy policy;
  policy.max_attempts = std::max<size_t>(1, tcp_.connect_attempts);
  policy.initial_backoff_ms = tcp_.connect_backoff_ms;
  policy.max_backoff_ms = std::max(tcp_.connect_backoff_ms * 16.0, 1000.0);

  DistHello hello;
  hello.worker_id = worker.config.worker_id;
  hello.generation = worker.config.generation;
  hello.block_begin = worker.config.block_begin;
  hello.block_end = worker.config.block_end;
  hello.fingerprint = worker.config.fingerprint;
  hello.num_threads = worker.config.options.num_threads;
  hello.counter_memory_budget_bytes =
      worker.config.options.counter_memory_budget_bytes;
  hello.parallel_replication_budget_bytes =
      worker.config.options.parallel_replication_budget_bytes;
  hello.stream_block_rows = worker.config.options.stream_block_rows;
  hello.heartbeat_ms = worker.config.heartbeat_ms;
  hello.io_timeout_ms = tcp_.io_timeout_ms;
  hello.inject_faults_spec = worker.config.options.inject_faults_spec;
  std::string hello_payload;
  EncodeHello(hello, &hello_payload);

  // Walk the endpoint ring from the worker's pin: the same endpoint first
  // (a restarted server replays), then the survivors (redistribution).
  // Channel-level failures move to the next endpoint; a *deterministic*
  // rejection (version mismatch, wrong shard file, a kError reply) fails
  // the run — every endpoint of a misconfigured cluster would say the same.
  Status last = Status::IOError("no worker endpoints configured");
  for (size_t i = 0; i < tcp_.endpoints.size(); ++i) {
    const size_t e = (worker.endpoint + i) % tcp_.endpoints.size();
    const WorkerEndpoint& endpoint = tcp_.endpoints[e];
    int fd = -1;
    const Status connected =
        RetryWithBackoff(policy, e, nullptr, [&]() -> Status {
          Result<int> r =
              TcpConnect(endpoint.host, endpoint.port, tcp_.io_timeout_ms);
          if (!r.ok()) return r.status();
          fd = *r;
          return Status::OK();
        });
    if (!connected.ok()) {
      last = connected;
      continue;
    }
    auto transport = std::make_unique<TcpTransport>(fd, tcp_.io_timeout_ms,
                                                    tcp_.io_timeout_ms);
    const Status shook = SendOn(*transport, DistMessageType::kHello,
                                hello_payload, &worker.stats.bytes_sent);
    if (!shook.ok()) {
      last = shook;
      continue;
    }
    Result<DistFrame> reply =
        RecvFrame(*transport, &worker.stats.bytes_received);
    if (!reply.ok()) {
      last = reply.status();
      continue;
    }
    if (reply->type == static_cast<uint32_t>(DistMessageType::kError)) {
      return Status::IOError(StrFormat(
          "worker endpoint %s rejected the handshake: %s",
          endpoint.text.c_str(), reply->payload.c_str()));
    }
    if (reply->type != static_cast<uint32_t>(DistMessageType::kHelloAck)) {
      return Status::Internal(StrFormat(
          "worker endpoint %s answered the Hello with frame type %u",
          endpoint.text.c_str(), reply->type));
    }
    Result<DistHelloAck> ack = ParseHelloAck(
        reinterpret_cast<const uint8_t*>(reply->payload.data()),
        reply->payload.size());
    if (!ack.ok()) return ack.status();
    if (ack->worker_id != worker.config.worker_id ||
        ack->generation != worker.config.generation ||
        ack->fingerprint != worker.config.fingerprint) {
      return Status::Internal(StrFormat(
          "worker endpoint %s acked a different assignment",
          endpoint.text.c_str()));
    }
    if (ack->num_rows != tcp_.expected_num_rows ||
        ack->num_blocks != tcp_.expected_num_blocks ||
        ack->index_crc != tcp_.expected_index_crc) {
      return Status::InvalidArgument(StrFormat(
          "worker endpoint %s serves a different QBT (rows %llu vs %llu, "
          "blocks %llu vs %llu, index crc %08x vs %08x) — every worker "
          "must serve the same table file as the coordinator",
          endpoint.text.c_str(),
          static_cast<unsigned long long>(ack->num_rows),
          static_cast<unsigned long long>(tcp_.expected_num_rows),
          static_cast<unsigned long long>(ack->num_blocks),
          static_cast<unsigned long long>(tcp_.expected_num_blocks),
          ack->index_crc, tcp_.expected_index_crc));
    }
    worker.endpoint = e;
    worker.stats.endpoint = endpoint.text;
    worker.transport = std::move(transport);
    return Status::OK();
  }
  return Status::IOError(StrFormat(
      "worker %u cannot reach any of the %zu endpoints; last error: %s",
      worker.config.worker_id, tcp_.endpoints.size(),
      last.ToString().c_str()));
}

Status DistWorkerPool::RespawnAndReplay(size_t w,
                                        DistMessageType request_type,
                                        const std::string& request_payload,
                                        DistPassStats* stats) {
  Worker& worker = workers_[w];
  if (worker.transport != nullptr) {
    worker.transport->Close();
    worker.transport.reset();
  }
  if (worker.pid > 0) {
    int wstatus = 0;
    ::waitpid(worker.pid, &wstatus, 0);
    worker.pid = -1;
  }
  if (worker.config.generation >= kMaxRespawnsPerWorker) {
    return Status::IOError(StrFormat(
        "worker %u died %zu times; giving up",
        worker.config.worker_id, static_cast<size_t>(kMaxRespawnsPerWorker)));
  }
  ++worker.config.generation;
  ++workers_respawned_;
  QARM_LOG(Warning) << "distributed worker " << worker.config.worker_id
                    << " died; respawning (generation "
                    << worker.config.generation << ") and replaying blocks ["
                    << worker.config.block_begin << ", "
                    << worker.config.block_end << ")";
  if (tcp_mode_) {
    const size_t previous_endpoint = worker.endpoint;
    QARM_RETURN_NOT_OK(ConnectWorker(w));
    ++worker.stats.reconnects;
    if (worker.endpoint != previous_endpoint) {
      ++worker.stats.redistributed;
      QARM_LOG(Warning) << "worker " << worker.config.worker_id
                        << " redistributed from endpoint "
                        << tcp_.endpoints[previous_endpoint].text << " to "
                        << tcp_.endpoints[worker.endpoint].text;
    }
  } else {
    QARM_RETURN_NOT_OK(Fork(w));
    ++worker.stats.respawns;
  }
  uint64_t sent_bytes = 0;
  // Replay: the catalog (when one was published) restores the worker's only
  // cross-request state, then the in-flight request re-runs its shard scan.
  // A worker that died during the catalog broadcast itself has the catalog
  // AS its in-flight request — send it once, not as both the state replay
  // and the request (the duplicate doubled the replay bytes for nothing).
  if (!catalog_payload_.empty() &&
      request_type != DistMessageType::kCatalog) {
    QARM_RETURN_NOT_OK(SendOn(*worker.transport, DistMessageType::kCatalog,
                              catalog_payload_, &sent_bytes));
    ++worker.stats.frames_retried;
  }
  const Status resent = SendOn(*worker.transport, request_type,
                               request_payload, &sent_bytes);
  ++worker.stats.frames_retried;
  worker.stats.bytes_sent += sent_bytes;
  if (stats != nullptr) stats->bytes_sent += sent_bytes;
  return resent;
}

Status DistWorkerPool::SendToWorker(size_t w, DistMessageType type,
                                    const std::string& payload,
                                    DistPassStats* stats) {
  uint64_t sent_bytes = 0;
  const Status status =
      SendOn(*workers_[w].transport, type, payload, &sent_bytes);
  workers_[w].stats.bytes_sent += sent_bytes;
  if (stats != nullptr) stats->bytes_sent += sent_bytes;
  if (status.ok()) return status;
  // The worker died between requests; the replay resends this request.
  return RespawnAndReplay(w, type, payload, stats);
}

Status DistWorkerPool::ReceiveReply(size_t w, DistMessageType request_type,
                                    const std::string& request_payload,
                                    DistMessageType reply_type,
                                    DistPassStats* stats,
                                    std::string* reply_payload) {
  for (;;) {
    uint64_t received_bytes = 0;
    Result<DistFrame> frame =
        RecvFrame(*workers_[w].transport, &received_bytes);
    workers_[w].stats.bytes_received += received_bytes;
    if (stats != nullptr) stats->bytes_received += received_bytes;
    if (frame.ok()) {
      if (frame->type ==
          static_cast<uint32_t>(DistMessageType::kHeartbeat)) {
        // Liveness, not a reply: the worker is mid-pass. Each heartbeat
        // re-arms the read deadline (RecvFrame bounds per frame).
        ++workers_[w].stats.heartbeats;
        continue;
      }
      if (frame->type == static_cast<uint32_t>(reply_type)) {
        *reply_payload = std::move(frame->payload);
        return Status::OK();
      }
      if (frame->type == static_cast<uint32_t>(DistMessageType::kError)) {
        // A clean worker-side failure is deterministic; do not respawn.
        return Status::IOError(StrFormat("worker %u failed: %s",
                                         workers_[w].config.worker_id,
                                         frame->payload.c_str()));
      }
      return Status::Internal(
          StrFormat("unexpected reply type %u from worker %u", frame->type,
                    workers_[w].config.worker_id));
    }
    if (frame.status().ToString().find("timed out") != std::string::npos) {
      // The per-frame deadline expired with no reply and no heartbeat:
      // the peer is wedged or partitioned, not merely slow.
      ++workers_[w].stats.heartbeat_timeouts;
    }
    // Transport failure: the worker (or its link) is gone. Respawn,
    // replay, and wait for the fresh incarnation's reply (budget enforced
    // inside).
    QARM_RETURN_NOT_OK(
        RespawnAndReplay(w, request_type, request_payload, stats));
  }
}

Result<std::vector<std::string>> DistWorkerPool::Exchange(
    DistMessageType request_type, const std::string& payload,
    DistMessageType reply_type, DistPassStats* stats) {
  Timer timer;
  // Fan the request out to every worker before reading any reply, so the
  // shards count concurrently; then collect strictly in worker order.
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(SendToWorker(w, request_type, payload, stats));
  }
  std::vector<std::string> replies(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(ReceiveReply(w, request_type, payload, reply_type,
                                    stats, &replies[w]));
  }
  if (stats != nullptr) stats->exchange_seconds += timer.ElapsedSeconds();
  return replies;
}

Result<std::vector<ShardSnapshot>> DistWorkerPool::ScanShards(
    DistPassStats* stats) {
  QARM_ASSIGN_OR_RETURN(
      std::vector<std::string> replies,
      Exchange(DistMessageType::kPass1Request, "",
               DistMessageType::kPass1Reply, stats));
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(replies.size());
  for (size_t w = 0; w < replies.size(); ++w) {
    QARM_ASSIGN_OR_RETURN(
        ShardSnapshot snapshot,
        ParseShardSnapshot(
            reinterpret_cast<const uint8_t*>(replies[w].data()),
            replies[w].size()));
    const Worker& worker = workers_[w];
    if (snapshot.worker_id != worker.config.worker_id ||
        snapshot.fingerprint != worker.config.fingerprint ||
        snapshot.block_begin != worker.config.block_begin ||
        snapshot.block_end != worker.config.block_end) {
      return Status::Internal(StrFormat(
          "shard snapshot from worker %u does not match its assignment",
          worker.config.worker_id));
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

Status DistWorkerPool::PublishCatalog(std::string payload,
                                      DistPassStats* stats) {
  catalog_payload_ = std::move(payload);
  for (size_t w = 0; w < workers_.size(); ++w) {
    QARM_RETURN_NOT_OK(SendToWorker(w, DistMessageType::kCatalog,
                                    catalog_payload_, stats));
  }
  return Status::OK();
}

Result<std::vector<DistCountReply>> DistWorkerPool::CountShards(
    const DistCountRequest& request, DistPassStats* stats) {
  std::string payload;
  EncodeCountRequest(request, &payload);
  QARM_ASSIGN_OR_RETURN(std::vector<std::string> replies,
                        Exchange(DistMessageType::kCountRequest, payload,
                                 DistMessageType::kCountReply, stats));
  std::vector<DistCountReply> parsed;
  parsed.reserve(replies.size());
  for (size_t w = 0; w < replies.size(); ++w) {
    QARM_ASSIGN_OR_RETURN(
        DistCountReply reply,
        ParseCountReply(reinterpret_cast<const uint8_t*>(replies[w].data()),
                        replies[w].size()));
    if (reply.worker_id != workers_[w].config.worker_id) {
      return Status::Internal("count reply arrived out of worker order");
    }
    parsed.push_back(std::move(reply));
  }
  return parsed;
}

}  // namespace qarm
