// Coordinator side of distributed mining: owns the worker channels (forked
// child processes over socketpairs, or TCP sessions to `qarm worker`
// servers) and the lockstep request/reply exchanges. Failure model: a
// worker that vanishes (EOF, reset, or a missed read deadline) is given a
// fresh incarnation at generation + 1 — re-forked in fork mode,
// reconnected in TCP mode, redistributing its shard to the next reachable
// endpoint when its own refuses to come back — and replayed: the catalog
// (if already published) plus the in-flight request, under a per-worker
// respawn budget. A worker that *answers* with a kError frame fails the
// run instead, because a respawned worker would deterministically hit the
// same error. Replies are always collected in worker order, so merged
// counts never depend on worker scheduling or which endpoint served a
// shard.
#ifndef QARM_DIST_COORDINATOR_H_
#define QARM_DIST_COORDINATOR_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "dist/messages.h"
#include "dist/transport.h"
#include "dist/worker.h"
#include "dist/worker_registry.h"
#include "storage/checkpoint_format.h"

namespace qarm {

// TCP-mode connection parameters plus the coordinator's view of the QBT,
// cross-checked against every HelloAck so a worker serving a stale or
// different shard copy is rejected at handshake time.
struct DistTcpOptions {
  std::vector<WorkerEndpoint> endpoints;
  uint64_t io_timeout_ms = 30000;   // per-frame read/write deadline
  uint64_t heartbeat_ms = 1000;     // worker liveness interval (< timeout)
  size_t connect_attempts = 10;     // per endpoint, with backoff
  double connect_backoff_ms = 50.0;
  uint64_t expected_num_rows = 0;
  uint64_t expected_num_blocks = 0;
  uint32_t expected_index_crc = 0;
};

class DistWorkerPool {
 public:
  // One worker survives this many respawns (or reconnects) before the pool
  // declares it permanently dead and fails the run. Each respawn raises
  // the worker's generation, so any kill-fault schedule with
  // fails_per_block <= this bound is ridden out.
  static constexpr size_t kMaxRespawnsPerWorker = 5;

  // Forks one worker per shard (worker w counts blocks
  // [shards[w].begin, shards[w].end) of base.qbt_path). `base` supplies
  // everything except worker_id/generation/block range. Must be called
  // while the calling process has no live threads (thread pools in this
  // codebase are ephemeral, so any point between phases qualifies).
  static Result<std::unique_ptr<DistWorkerPool>> Start(
      const DistWorkerConfig& base, const std::vector<IndexRange>& shards);

  // TCP mode: connects one session per shard, worker w pinned to
  // tcp.endpoints[w] (shards.size() <= endpoints.size(); spare endpoints
  // stay idle as redistribution targets). Each session opens with the
  // versioned Hello/HelloAck handshake (dist/handshake.h).
  static Result<std::unique_ptr<DistWorkerPool>> Connect(
      const DistWorkerConfig& base, const std::vector<IndexRange>& shards,
      const DistTcpOptions& tcp);

  // Shuts down every worker (fork mode reaps the children; TCP mode just
  // closes the sessions — the servers keep serving other runs).
  ~DistWorkerPool();

  DistWorkerPool(const DistWorkerPool&) = delete;
  DistWorkerPool& operator=(const DistWorkerPool&) = delete;

  size_t num_workers() const { return workers_.size(); }
  size_t workers_respawned() const { return workers_respawned_; }
  // Per-worker robustness counters, endpoint attribution included.
  std::vector<DistWorkerStats> WorkerStats() const;

  // Pass 1: every worker scans its shard's value counts; returns the shard
  // snapshots in worker order, cross-checked against the expected
  // fingerprint and block ranges.
  Result<std::vector<ShardSnapshot>> ScanShards(DistPassStats* stats);

  // Broadcasts the item catalog (QCP catalog encoding) and retains the
  // payload so a respawned worker can be replayed into the same state.
  Status PublishCatalog(std::string payload, DistPassStats* stats);

  // One counting pass: broadcasts `request`, returns the per-shard replies
  // in worker order.
  Result<std::vector<DistCountReply>> CountShards(
      const DistCountRequest& request, DistPassStats* stats);

 private:
  struct Worker {
    DistWorkerConfig config;
    std::unique_ptr<Transport> transport;
    pid_t pid = -1;       // fork mode only
    size_t endpoint = 0;  // TCP mode: index into tcp_.endpoints
    DistWorkerStats stats;
  };

  DistWorkerPool() = default;

  Status Fork(size_t w);
  // TCP: connect + handshake, walking the endpoint ring from the worker's
  // current pin — so a reconnect tries the same endpoint first (replay)
  // and falls over to survivors (redistribution) when it stays down.
  Status ConnectWorker(size_t w);
  // Kills the bookkeeping for a vanished worker, brings up generation + 1
  // (refork or reconnect), and replays the catalog plus the in-flight
  // request.
  Status RespawnAndReplay(size_t w, DistMessageType request_type,
                          const std::string& request_payload,
                          DistPassStats* stats);
  Status SendToWorker(size_t w, DistMessageType type,
                      const std::string& payload, DistPassStats* stats);
  // Reads worker w's reply to the in-flight request, skipping heartbeat
  // frames and respawning/replaying through transport failures until the
  // budget runs out.
  Status ReceiveReply(size_t w, DistMessageType request_type,
                      const std::string& request_payload,
                      DistMessageType reply_type, DistPassStats* stats,
                      std::string* reply_payload);
  Result<std::vector<std::string>> Exchange(DistMessageType request_type,
                                            const std::string& payload,
                                            DistMessageType reply_type,
                                            DistPassStats* stats);

  bool tcp_mode_ = false;
  DistTcpOptions tcp_;
  std::vector<Worker> workers_;
  std::string catalog_payload_;  // retained for respawn replay
  size_t workers_respawned_ = 0;
};

}  // namespace qarm

#endif  // QARM_DIST_COORDINATOR_H_
