// Coordinator side of distributed mining: owns the forked worker
// processes, their socketpair channels, and the lockstep request/reply
// exchanges. Failure model: a worker that vanishes (EOF/EPIPE on its
// channel) is respawned with generation + 1 and replayed — the catalog (if
// already published) plus the in-flight request — under a per-worker
// respawn budget; a worker that *answers* with a kError frame fails the
// run instead, because a respawned worker would deterministically hit the
// same error. Replies are always collected in worker order, so merged
// counts never depend on worker scheduling.
#ifndef QARM_DIST_COORDINATOR_H_
#define QARM_DIST_COORDINATOR_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/miner.h"
#include "dist/messages.h"
#include "dist/worker.h"
#include "storage/checkpoint_format.h"

namespace qarm {

class DistWorkerPool {
 public:
  // One worker survives this many respawns before the pool declares it
  // permanently dead and fails the run. Each respawn raises the worker's
  // generation, so any kill-fault schedule with fails_per_block <= this
  // bound is ridden out.
  static constexpr size_t kMaxRespawnsPerWorker = 5;

  // Forks one worker per shard (worker w counts blocks
  // [shards[w].begin, shards[w].end) of base.qbt_path). `base` supplies
  // everything except worker_id/generation/block range. Must be called
  // while the calling process has no live threads (thread pools in this
  // codebase are ephemeral, so any point between phases qualifies).
  static Result<std::unique_ptr<DistWorkerPool>> Start(
      const DistWorkerConfig& base, const std::vector<IndexRange>& shards);

  // Shuts down and reaps every worker (close -> EOF -> worker exits).
  ~DistWorkerPool();

  DistWorkerPool(const DistWorkerPool&) = delete;
  DistWorkerPool& operator=(const DistWorkerPool&) = delete;

  size_t num_workers() const { return workers_.size(); }
  size_t workers_respawned() const { return workers_respawned_; }

  // Pass 1: every worker scans its shard's value counts; returns the shard
  // snapshots in worker order, cross-checked against the expected
  // fingerprint and block ranges.
  Result<std::vector<ShardSnapshot>> ScanShards(DistPassStats* stats);

  // Broadcasts the item catalog (QCP catalog encoding) and retains the
  // payload so a respawned worker can be replayed into the same state.
  Status PublishCatalog(std::string payload, DistPassStats* stats);

  // One counting pass: broadcasts `request`, returns the per-shard replies
  // in worker order.
  Result<std::vector<DistCountReply>> CountShards(
      const DistCountRequest& request, DistPassStats* stats);

 private:
  struct Worker {
    DistWorkerConfig config;
    int fd = -1;
    pid_t pid = -1;
  };

  DistWorkerPool() = default;

  Status Fork(size_t w);
  // Kills the bookkeeping for a vanished worker, forks generation + 1, and
  // replays the catalog plus the in-flight request.
  Status RespawnAndReplay(size_t w, DistMessageType request_type,
                          const std::string& request_payload,
                          DistPassStats* stats);
  Status SendToWorker(size_t w, DistMessageType type,
                      const std::string& payload, DistPassStats* stats);
  // Reads worker w's reply to the in-flight request, respawning and
  // replaying through transport failures until the budget runs out.
  Status ReceiveReply(size_t w, DistMessageType request_type,
                      const std::string& request_payload,
                      DistMessageType reply_type, DistPassStats* stats,
                      std::string* reply_payload);
  Result<std::vector<std::string>> Exchange(DistMessageType request_type,
                                            const std::string& payload,
                                            DistMessageType reply_type,
                                            DistPassStats* stats);

  std::vector<Worker> workers_;
  std::string catalog_payload_;  // retained for respawn replay
  size_t workers_respawned_ = 0;
};

}  // namespace qarm

#endif  // QARM_DIST_COORDINATOR_H_
