// The `qarm worker` process: listens on a TCP port, and serves one mining
// session (dist/worker.h request loop) per accepted connection. The server
// opens its QBT once at startup and shares the mmap across sessions —
// concurrent sessions are how shard redistribution works: when another
// worker dies, the coordinator connects a second session to a survivor
// carrying the dead worker's shard assignment in the Hello.
//
// Connection lifecycle:
//   accept -> RecvFrame (must be kHello) -> ParseHello -> arm faults and
//   the write deadline from the Hello -> send kHelloAck (shard identity:
//   rows, blocks, index CRC) -> RunWorkerSession until shutdown/EOF.
//
// A connection that opens with garbage (bad magic, truncated Hello, a
// version mismatch) gets a best-effort kError frame and is closed; the
// server itself keeps serving. The server trusts the coordinator for shard
// assignment but never for memory safety: every Hello field is bounds-
// checked by the handshake codec before use.
#ifndef QARM_DIST_WORKER_SERVER_H_
#define QARM_DIST_WORKER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dist/transport.h"
#include "storage/record_source.h"

namespace qarm {

struct WorkerServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port back via port()
  std::string qbt_path;
  // Write deadline used until a session's Hello supplies its own.
  uint64_t handshake_timeout_ms = 30000;
};

class WorkerServer {
 public:
  // Opens the QBT, binds the listener, and starts the accept thread.
  static Result<std::unique_ptr<WorkerServer>> Start(
      const WorkerServerOptions& options);

  ~WorkerServer();

  // Stops accepting, tears down in-flight sessions (their reads fail with
  // a shutdown error), and joins every thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t sessions_served() const {
    return sessions_served_.load(std::memory_order_relaxed);
  }

 private:
  WorkerServer() = default;

  void AcceptLoop();
  void ServeConnection(const std::shared_ptr<TcpTransport>& transport);

  WorkerServerOptions options_;
  std::unique_ptr<QbtFileSource> file_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  bool stopping_ = false;
  struct Session {
    std::thread thread;
    std::shared_ptr<TcpTransport> transport;
  };
  std::vector<Session> sessions_;
  std::atomic<uint64_t> sessions_served_{0};
};

}  // namespace qarm

#endif  // QARM_DIST_WORKER_SERVER_H_
