#include "dist/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/hash.h"
#include "common/string_util.h"

namespace qarm {
namespace {

// Same stream-split trick as the storage injector: the faulted? decision
// and the kind choice for one write ordinal are independent draws.
constexpr uint64_t kNetFaultStream = 0x6e657466ULL;   // "netf"
constexpr uint64_t kNetKindStream = 0x6e6b696eULL;    // "nkin"

double UnitUniform(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetSocketTimeout(int fd, int which, uint64_t timeout_ms) {
  if (timeout_ms == 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof(tv));
}

// Fills `addr` from an IPv4 literal or, failing that, a resolved hostname
// ("localhost", a DNS name). IPv6 is out of scope for this transport.
Status ResolveIpv4(const std::string& host, in_addr* addr) {
  if (::inet_pton(AF_INET, host.c_str(), addr) == 1) return Status::OK();
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (res != nullptr) ::freeaddrinfo(res);
    return Status::InvalidArgument(StrFormat(
        "cannot resolve host '%s': %s", host.c_str(), ::gai_strerror(rc)));
  }
  *addr = reinterpret_cast<const sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

Status FdTransport::Read(void* data, size_t size, size_t* bytes_read) {
  *bytes_read = 0;
  if (fd_ < 0) return Status::IOError("transport is closed");
  for (;;) {
    const ssize_t n = ::read(fd_, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("transport read failed: %s", std::strerror(errno)));
    }
    *bytes_read = static_cast<size_t>(n);
    return Status::OK();
  }
}

Status FdTransport::Write(const void* data, size_t size) {
  if (fd_ < 0) return Status::IOError("transport is closed");
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd_, p, remaining);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("transport write failed: %s", std::strerror(errno)));
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

void FdTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

NetFaultInjection NetFaultsFromSpec(const FaultInjectionConfig& config,
                                    uint64_t generation) {
  NetFaultInjection faults;
  faults.kinds = NetFaultKinds(config.kinds);
  faults.enabled = faults.kinds != 0;
  faults.seed = config.seed;
  faults.rate = config.rate;
  faults.after_writes = config.after_reads;
  faults.generation = generation;
  faults.fails = config.fails_per_block;
  faults.stall_ms = config.stall_ms;
  return faults;
}

TcpTransport::TcpTransport(int fd, uint64_t io_timeout_ms,
                           uint64_t read_timeout_ms, NetFaultInjection faults)
    : fd_(fd),
      io_timeout_ms_(io_timeout_ms),
      read_timeout_ms_(read_timeout_ms),
      faults_(faults) {
  // The kernel timeouts arm the bound; the wall-clock checks in Read/Write
  // keep EINTR or byte-trickle loops from stretching it.
  SetSocketTimeout(fd_, SO_RCVTIMEO, read_timeout_ms_);
  SetSocketTimeout(fd_, SO_SNDTIMEO, io_timeout_ms_);
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void TcpTransport::SetWriteTimeoutMs(uint64_t io_timeout_ms) {
  io_timeout_ms_ = io_timeout_ms;
  if (fd_ >= 0) SetSocketTimeout(fd_, SO_SNDTIMEO, io_timeout_ms_);
}

bool TcpTransport::PickFault(uint64_t ordinal, FaultKind* kind) const {
  if (!faults_.enabled || faults_.generation >= faults_.fails ||
      ordinal < faults_.after_writes) {
    return false;
  }
  const uint64_t bits = SplitMix64(faults_.seed ^ kNetFaultStream ^
                                   ordinal * 0x9e3779b97f4a7c15ULL);
  if (UnitUniform(bits) >= faults_.rate) return false;
  FaultKind enabled[3];
  size_t n = 0;
  for (FaultKind k : {FaultKind::kConnReset, FaultKind::kStall,
                      FaultKind::kPartialWrite}) {
    if (faults_.kinds & static_cast<uint32_t>(k)) enabled[n++] = k;
  }
  if (n == 0) return false;
  const uint64_t pick = SplitMix64(faults_.seed ^ kNetKindStream ^
                                   ordinal * 0x9e3779b97f4a7c15ULL);
  *kind = enabled[pick % n];
  return true;
}

void TcpTransport::AbortConnection() {
  if (fd_ < 0) return;
  // SO_LINGER with zero timeout turns close() into an RST: the peer's next
  // read fails with ECONNRESET instead of a clean EOF, modeling a crashed
  // or NAT-dropped connection rather than an orderly shutdown.
  linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

Status TcpTransport::Read(void* data, size_t size, size_t* bytes_read) {
  *bytes_read = 0;
  if (fd_ < 0) return Status::IOError("transport is closed");
  const uint64_t deadline =
      read_timeout_ms_ > 0 ? NowMs() + read_timeout_ms_ : 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n >= 0) {
      *bytes_read = static_cast<size_t>(n);
      return Status::OK();
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      if (deadline != 0 && NowMs() >= deadline) {
        return Status::IOError(StrFormat(
            "transport read timed out after %llu ms",
            static_cast<unsigned long long>(read_timeout_ms_)));
      }
      continue;
    }
    return Status::IOError(
        StrFormat("transport read failed: %s", std::strerror(errno)));
  }
}

Status TcpTransport::Write(const void* data, size_t size) {
  if (fd_ < 0) return Status::IOError("transport is closed");
  const uint64_t ordinal = writes_++;
  FaultKind kind;
  if (PickFault(ordinal, &kind)) {
    switch (kind) {
      case FaultKind::kConnReset:
        AbortConnection();
        return Status::IOError(StrFormat(
            "injected connection reset on write %llu",
            static_cast<unsigned long long>(ordinal)));
      case FaultKind::kPartialWrite: {
        // Half the bytes land, then the connection dies mid-frame: the
        // peer's framing layer must surface a clean IOError, never hang.
        const size_t prefix = size / 2;
        if (prefix > 0) {
          const ssize_t sent = ::send(fd_, data, prefix, MSG_NOSIGNAL);
          (void)sent;
        }
        AbortConnection();
        return Status::IOError(StrFormat(
            "injected partial write on write %llu",
            static_cast<unsigned long long>(ordinal)));
      }
      case FaultKind::kStall:
        // Play dead long enough for the peer's read deadline to fire, then
        // proceed with the write; by then the peer has usually torn the
        // connection down, so the send below reports the broken pipe.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(faults_.stall_ms));
        break;
      default:
        break;
    }
  }
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  const uint64_t deadline = io_timeout_ms_ > 0 ? NowMs() + io_timeout_ms_ : 0;
  while (remaining > 0) {
    const ssize_t n = ::send(fd_, p, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      if (deadline != 0 && NowMs() >= deadline) {
        return Status::IOError(StrFormat(
            "transport write timed out after %llu ms",
            static_cast<unsigned long long>(io_timeout_ms_)));
      }
      continue;
    }
    return Status::IOError(
        StrFormat("transport write failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<int> TcpConnect(const std::string& host, uint16_t port,
                       uint64_t io_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (const Status resolved = ResolveIpv4(host, &addr.sin_addr);
      !resolved.ok()) {
    ::close(fd);
    return resolved;
  }
  // Bound the connect itself: a silently dropping (partitioned) endpoint
  // must not hang discovery. Non-blocking connect + poll, then back to
  // blocking mode for the transport.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout =
        io_timeout_ms == 0 ? -1 : static_cast<int>(io_timeout_ms);
    rc = ::poll(&pfd, 1, timeout);
    if (rc == 0) {
      ::close(fd);
      return Status::IOError(StrFormat("connect %s:%u timed out",
                                       host.c_str(), port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("connect %s:%u failed: %s", host.c_str(),
                                     port, std::strerror(errno)));
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

Result<int> TcpListen(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (const Status resolved = ResolveIpv4(host, &addr.sin_addr);
      !resolved.ok()) {
    ::close(fd);
    return resolved;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        StrFormat("bind %s:%u failed: %s", host.c_str(), port,
                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    const Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const Status status = Status::IOError(std::string("getsockname: ") +
                                            std::strerror(errno));
      ::close(fd);
      return status;
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace qarm
