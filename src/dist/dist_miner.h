// Distributed mining entry point: mines a QBT file with
// options.num_workers forked worker processes (qarm mine --workers=N).
//
// Shape of a run: the coordinator opens the QBT for its schema and row
// count, forks one worker per contiguous block range
// (SplitRange(num_blocks, workers) — effective workers = min(workers,
// blocks)), and then runs the ordinary mining driver with hooks that
// delegate every record scan: pass 1 merges per-shard value-count
// snapshots, each counting pass merges per-shard support counts, both in
// fixed worker order. Counts are exact integers, so the merged totals —
// and therefore the mined rules — are bit-identical to a single-process
// run at any worker count x thread count. Checkpointing, rule generation,
// interest, and decode run unchanged in the coordinator; num_workers is
// excluded from the checkpoint fingerprint, so runs may stop and resume at
// different worker counts.
#ifndef QARM_DIST_DIST_MINER_H_
#define QARM_DIST_DIST_MINER_H_

#include <string>

#include "core/miner.h"

namespace qarm {

// Mines `qbt_path` with options.num_workers worker processes. Falls back
// to the plain single-process MineStreamed when the effective worker count
// is <= 1. Fails like MineStreamed (invalid options, cancelled run, block
// read failure), plus IOError when a worker dies more than
// DistWorkerPool::kMaxRespawnsPerWorker times.
Result<MiningResult> MineDistributedQbt(const std::string& qbt_path,
                                        const MinerOptions& options);

}  // namespace qarm

#endif  // QARM_DIST_DIST_MINER_H_
