// The worker side of distributed mining: a request loop that scans its
// assigned QBT block range and answers the coordinator's framed messages.
// Workers are deliberately dumb — they hold no pass state beyond the
// published item catalog, so a respawned (or reconnected) worker only
// needs the catalog and the current request replayed to continue.
//
// The loop itself (RunWorkerSession) is transport-generic: fork mode runs
// it over the inherited socketpair (RunDistWorker), and the TCP worker
// server (dist/worker_server.h) runs one session per accepted connection
// after the Hello/HelloAck handshake supplies the config.
#ifndef QARM_DIST_WORKER_H_
#define QARM_DIST_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/options.h"
#include "dist/transport.h"
#include "storage/record_source.h"

namespace qarm {

struct DistWorkerConfig {
  std::string qbt_path;
  MinerOptions options;  // num_threads and inject_faults_spec apply here
  uint32_t worker_id = 0;
  // Incarnation number: 0 for the first fork/connect, +1 per respawn or
  // reconnect. Gates the fault injector's kill faults and the transport's
  // network faults (FaultInjectionConfig::generation) so a scheduled fault
  // fires once and the respawned incarnation survives the replay.
  uint64_t generation = 0;
  // Contiguous range of the QBT's blocks this worker counts.
  size_t block_begin = 0;
  size_t block_end = 0;
  // The run fingerprint, stamped into pass-1 shard snapshots so the
  // coordinator can cross-check that a worker is serving the same run.
  uint64_t fingerprint = 0;
  // Liveness heartbeats while a request is being served (ms between
  // kHeartbeat frames); 0 — the fork-mode setting — disables them.
  uint64_t heartbeat_ms = 0;
};

// Serves requests from `transport` against `file` (the worker's full view
// of the QBT; the session scopes it to the config's block range) until a
// kShutdown frame (OK) or a transport failure (the error). Clean
// per-request failures are answered with kError frames and the loop
// continues. When the config's fault spec carries storage kinds, the scan
// runs through a FaultInjectingRecordSource at the config's generation.
Status RunWorkerSession(Transport& transport, const DistWorkerConfig& config,
                        const RecordSource& file);

// Fork-mode entry: opens the QBT itself and runs the session over `fd`.
// Called in the forked child, which must pass the return value to _Exit —
// never return into the coordinator's stack. Returns 0 on a clean
// shutdown, 1 when the channel broke.
int RunDistWorker(int fd, const DistWorkerConfig& config);

}  // namespace qarm

#endif  // QARM_DIST_WORKER_H_
