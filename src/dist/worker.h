// The forked worker side of distributed mining: a request loop that scans
// its assigned QBT block range and answers the coordinator's framed
// messages. Workers are deliberately dumb — they hold no pass state beyond
// the published item catalog, so a respawned worker only needs the catalog
// and the current request replayed to continue.
#ifndef QARM_DIST_WORKER_H_
#define QARM_DIST_WORKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/options.h"

namespace qarm {

struct DistWorkerConfig {
  std::string qbt_path;
  MinerOptions options;  // num_threads and inject_faults_spec apply here
  uint32_t worker_id = 0;
  // Incarnation number: 0 for the first fork, +1 per respawn. Gates the
  // fault injector's kill faults (FaultInjectionConfig::generation) so a
  // scheduled kill fires once and the respawned worker survives the replay.
  uint64_t generation = 0;
  // Contiguous range of the QBT's blocks this worker counts.
  size_t block_begin = 0;
  size_t block_end = 0;
  // The run fingerprint, stamped into pass-1 shard snapshots so the
  // coordinator can cross-check that a worker is serving the same run.
  uint64_t fingerprint = 0;
};

// Runs the worker request loop on `fd` until a kShutdown frame or EOF.
// Called in the forked child, which must pass the return value to _Exit —
// never return into the coordinator's stack. Opens its own view of the QBT
// file; all replies (including clean per-request failures, sent as kError
// frames) go back over `fd`. Returns 0 on a clean shutdown, 1 when the
// channel broke.
int RunDistWorker(int fd, const DistWorkerConfig& config);

}  // namespace qarm

#endif  // QARM_DIST_WORKER_H_
