#include "dist/worker_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "dist/framing.h"
#include "dist/handshake.h"
#include "dist/messages.h"
#include "dist/worker.h"
#include "storage/fault_injection.h"

namespace qarm {
namespace {

// Builds the session's worker config from a validated Hello. The Hello
// carries only execution knobs — everything that shapes the *output*
// arrives later through the request stream (the catalog broadcast, the
// candidate lists), so defaulted MinerOptions fields here are harmless.
DistWorkerConfig ConfigFromHello(const DistHello& hello,
                                 const std::string& qbt_path) {
  DistWorkerConfig config;
  config.qbt_path = qbt_path;
  config.worker_id = hello.worker_id;
  config.generation = hello.generation;
  config.block_begin = static_cast<size_t>(hello.block_begin);
  config.block_end = static_cast<size_t>(hello.block_end);
  config.fingerprint = hello.fingerprint;
  config.heartbeat_ms = hello.heartbeat_ms;
  config.options.num_threads = static_cast<size_t>(hello.num_threads);
  config.options.counter_memory_budget_bytes =
      hello.counter_memory_budget_bytes;
  config.options.parallel_replication_budget_bytes =
      hello.parallel_replication_budget_bytes;
  config.options.stream_block_rows =
      static_cast<size_t>(hello.stream_block_rows);
  config.options.inject_faults_spec = hello.inject_faults_spec;
  return config;
}

void SendErrorBestEffort(Transport& transport, const Status& status) {
  const Status sent =
      SendFrame(transport, static_cast<uint32_t>(DistMessageType::kError),
                status.ToString());
  (void)sent;
}

}  // namespace

Result<std::unique_ptr<WorkerServer>> WorkerServer::Start(
    const WorkerServerOptions& options) {
  std::unique_ptr<WorkerServer> server(new WorkerServer());
  server->options_ = options;
  QARM_ASSIGN_OR_RETURN(server->file_, QbtFileSource::Open(options.qbt_path));
  QARM_ASSIGN_OR_RETURN(
      server->listen_fd_,
      TcpListen(options.host, options.port, &server->port_));
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

WorkerServer::~WorkerServer() { Stop(); }

void WorkerServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Sessions block in recv with no deadline (idle between passes is
    // normal); shutdown makes those reads fail so the threads exit. The
    // transports are closed by their owning shared_ptrs after the join.
    for (Session& session : sessions_) {
      if (session.transport->fd() >= 0) {
        ::shutdown(session.transport->fd(), SHUT_RDWR);
      }
    }
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop spawns no new sessions once stopping_ is set, so the
  // vector is stable after the join above.
  for (Session& session : sessions_) {
    if (session.thread.joinable()) session.thread.join();
  }
  sessions_.clear();
}

void WorkerServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or broken) — stop serving
    }
    auto transport = std::make_shared<TcpTransport>(
        fd, options_.handshake_timeout_ms, /*read_timeout_ms=*/0);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      transport->Close();
      continue;
    }
    Session session;
    session.transport = transport;
    session.thread = std::thread(
        [this, transport] { ServeConnection(transport); });
    sessions_.push_back(std::move(session));
  }
}

void WorkerServer::ServeConnection(
    const std::shared_ptr<TcpTransport>& transport) {
  Result<DistFrame> first = RecvFrame(*transport);
  if (!first.ok()) return;  // garbage or vanished client: just close
  if (static_cast<DistMessageType>(first->type) != DistMessageType::kHello) {
    SendErrorBestEffort(*transport,
                        Status::InvalidArgument(
                            "expected a Hello as the first frame"));
    return;
  }
  Result<DistHello> hello = ParseHello(
      reinterpret_cast<const uint8_t*>(first->payload.data()),
      first->payload.size());
  if (!hello.ok()) {
    SendErrorBestEffort(*transport, hello.status());
    return;
  }
  if (hello->block_end > file_->num_blocks()) {
    SendErrorBestEffort(
        *transport,
        Status::InvalidArgument(StrFormat(
            "hello block range [%llu, %llu) exceeds the %zu blocks in %s",
            static_cast<unsigned long long>(hello->block_begin),
            static_cast<unsigned long long>(hello->block_end),
            file_->num_blocks(), options_.qbt_path.c_str())));
    return;
  }

  // Arm the session's write deadline and (when the spec carries network
  // kinds) the deterministic transport saboteur, both from the Hello.
  if (hello->io_timeout_ms > 0) {
    transport->SetWriteTimeoutMs(hello->io_timeout_ms);
  }
  if (!hello->inject_faults_spec.empty()) {
    Result<FaultInjectionConfig> spec =
        ParseFaultSpec(hello->inject_faults_spec);
    if (!spec.ok()) {
      SendErrorBestEffort(*transport, spec.status());
      return;
    }
    transport->SetFaults(NetFaultsFromSpec(*spec, hello->generation));
  }

  DistHelloAck ack;
  ack.worker_id = hello->worker_id;
  ack.generation = hello->generation;
  ack.fingerprint = hello->fingerprint;
  ack.num_rows = file_->num_rows();
  ack.num_blocks = file_->num_blocks();
  ack.index_crc = file_->reader().IndexPrefixCrc(file_->num_blocks());
  std::string payload;
  EncodeHelloAck(ack, &payload);
  if (!SendFrame(*transport,
                 static_cast<uint32_t>(DistMessageType::kHelloAck), payload)
           .ok()) {
    return;
  }
  sessions_served_.fetch_add(1, std::memory_order_relaxed);

  const DistWorkerConfig config =
      ConfigFromHello(*hello, options_.qbt_path);
  const Status served = RunWorkerSession(*transport, config, *file_);
  (void)served;  // EOF/reset just ends this session; the server lives on
}

}  // namespace qarm
