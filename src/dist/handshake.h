// The versioned Hello/HelloAck handshake that opens every TCP worker
// session. Fork-mode workers inherit their DistWorkerConfig through fork;
// a remote worker instead receives it as the connection's first frame:
//
//   coordinator                          worker (qarm worker --listen=...)
//   ------------------------------------------------------------------
//   kHello (DistHello)               ->
//                                    <-  kHelloAck (DistHelloAck)
//   ... then the ordinary request loop (dist/messages.h) ...
//
// DistHello carries the protocol version FIRST, then the worker's shard
// assignment (worker id, generation, block range), the run fingerprint,
// and the execution knobs the worker needs (thread count, counter budgets,
// fault spec, heartbeat interval). Output-affecting options never travel:
// the worker only scans value counts and counts supports against the
// catalog the coordinator broadcasts, so the fingerprint — not an options
// codec — is the run-identity contract.
//
// DistHelloAck echoes the assignment and adds the worker's view of its QBT
// file (row/block counts and the block-index prefix CRC), which the
// coordinator cross-checks against its own file so a worker serving a
// stale or wrong shard copy is rejected at handshake time, not as a count
// mismatch three passes later.
//
// Every field is validated against the payload's remaining size before any
// allocation (the QBT/QRS division-form discipline), and a version
// mismatch is reported as its own InvalidArgument — a peer speaking a
// different protocol must produce a readable diagnostic, not a CRC error
// or a truncated-message complaint.
#ifndef QARM_DIST_HANDSHAKE_H_
#define QARM_DIST_HANDSHAKE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace qarm {

// Bump on any wire-visible change to the frame layout, the handshake
// payloads, or the request/reply vocabulary.
inline constexpr uint32_t kDistProtocolVersion = 1;

// Caps the Hello's fault-spec string. Real specs are tens of bytes; the
// cap only exists so a hostile length prefix cannot turn into a giant
// allocation before the remaining-size check would catch it.
inline constexpr uint64_t kDistMaxFaultSpecBytes = 4096;

struct DistHello {
  uint32_t version = kDistProtocolVersion;
  uint32_t worker_id = 0;
  uint64_t generation = 0;
  uint64_t block_begin = 0;
  uint64_t block_end = 0;
  uint64_t fingerprint = 0;
  // Execution knobs for the worker's scans.
  uint64_t num_threads = 1;
  uint64_t counter_memory_budget_bytes = 0;
  uint64_t parallel_replication_budget_bytes = 0;
  uint64_t stream_block_rows = 0;
  // Liveness + deadline contract for this session (ms). heartbeat_ms == 0
  // disables heartbeats; io_timeout_ms bounds the worker's frame writes.
  uint64_t heartbeat_ms = 0;
  uint64_t io_timeout_ms = 0;
  // Deterministic fault spec (storage + network kinds), empty = none.
  std::string inject_faults_spec;
};

struct DistHelloAck {
  uint32_t version = kDistProtocolVersion;
  uint32_t worker_id = 0;
  uint64_t generation = 0;
  uint64_t fingerprint = 0;  // echo of the Hello's
  // The worker's view of its QBT shard file.
  uint64_t num_rows = 0;
  uint64_t num_blocks = 0;
  uint32_t index_crc = 0;  // block-index prefix CRC over num_blocks entries
};

void EncodeHello(const DistHello& hello, std::string* out);
// InvalidArgument on a version mismatch (message names both versions);
// IOError on truncation, oversized fields, or trailing bytes.
Result<DistHello> ParseHello(const uint8_t* data, size_t size);

void EncodeHelloAck(const DistHelloAck& ack, std::string* out);
Result<DistHelloAck> ParseHelloAck(const uint8_t* data, size_t size);

}  // namespace qarm

#endif  // QARM_DIST_HANDSHAKE_H_
