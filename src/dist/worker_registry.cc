#include "dist/worker_registry.h"

#include "common/string_util.h"

namespace qarm {

Result<WorkerEndpoint> ParseWorkerEndpoint(const std::string& text) {
  WorkerEndpoint endpoint;
  endpoint.text = text;
  std::string host;
  std::string port_text;
  if (!text.empty() && text[0] == '[') {
    // Bracketed IPv6 literal: [::1]:7401.
    const size_t close = text.find(']');
    if (close == std::string::npos || close + 1 >= text.size() ||
        text[close + 1] != ':') {
      return Status::InvalidArgument(StrFormat(
          "worker endpoint '%s' is not [IPV6]:PORT", text.c_str()));
    }
    host = text.substr(1, close - 1);
    port_text = text.substr(close + 2);
  } else {
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "worker endpoint '%s' is not HOST:PORT", text.c_str()));
    }
    host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  if (host.empty()) {
    return Status::InvalidArgument(StrFormat(
        "worker endpoint '%s' has an empty host", text.c_str()));
  }
  Result<uint64_t> port = ParseUint64(port_text);
  if (!port.ok() || *port == 0 || *port > 65535) {
    return Status::InvalidArgument(StrFormat(
        "worker endpoint '%s' needs a port in [1, 65535]", text.c_str()));
  }
  endpoint.host = std::move(host);
  endpoint.port = static_cast<uint16_t>(*port);
  return endpoint;
}

Result<std::vector<WorkerEndpoint>> ParseWorkerEndpoints(
    const std::vector<std::string>& texts) {
  std::vector<WorkerEndpoint> endpoints;
  endpoints.reserve(texts.size());
  for (const std::string& text : texts) {
    QARM_ASSIGN_OR_RETURN(WorkerEndpoint endpoint, ParseWorkerEndpoint(text));
    endpoints.push_back(std::move(endpoint));
  }
  return endpoints;
}

}  // namespace qarm
