// Byte-stream transport between the distributed-mining coordinator and a
// worker. Two implementations:
//
//   * FdTransport — the original fork-mode socketpair (or any pipe-like
//     fd). Blocking, no deadlines: a forked worker shares the coordinator's
//     fate, so a stalled read means a program bug, not a network partition.
//
//   * TcpTransport — a connected TCP socket with per-operation deadlines
//     (SO_RCVTIMEO/SO_SNDTIMEO plus a wall-clock bound, the serve-engine
//     SendAll pattern) so a vanished or partitioned peer surfaces as a
//     bounded IOError, never a hang. The worker side can also carry a
//     deterministic network-fault injector (storage/fault_injection.h
//     kinds conn_reset, stall, partial_write) that sabotages a seeded
//     subset of frame writes, so every reconnect/redistribute path in the
//     coordinator is exercised by reproducible tests.
//
// Reads may return fewer bytes than asked (that is what the byte-split
// framing tests rely on); writes either complete or fail. A clean EOF is
// Status::OK with *bytes_read == 0.
#ifndef QARM_DIST_TRANSPORT_H_
#define QARM_DIST_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/fault_injection.h"

namespace qarm {

class Transport {
 public:
  virtual ~Transport() = default;

  // Reads up to `size` bytes into `data`. On success *bytes_read is the
  // number transferred; 0 means the peer closed the stream. Partial reads
  // are normal.
  virtual Status Read(void* data, size_t size, size_t* bytes_read) = 0;

  // Writes all of [data, data + size) or returns an error.
  virtual Status Write(const void* data, size_t size) = 0;

  // Idempotent. After Close every Read/Write fails.
  virtual void Close() = 0;
};

// Fork-mode transport over a socketpair (or pipe) fd. Owns the fd: Close
// (and the destructor) closes it. send() with MSG_NOSIGNAL keeps a dead
// peer an EPIPE instead of a SIGPIPE; non-socket fds fall back to write().
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override { Close(); }

  Status Read(void* data, size_t size, size_t* bytes_read) override;
  Status Write(const void* data, size_t size) override;
  void Close() override;

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// Deterministic sabotage of a TCP transport's frame writes. Whether write
// ordinal n (0-based, counted per connection) is faulted is a pure function
// of (seed, n), and only incarnations with generation < fails_per_block
// fault at all — a reconnected session (generation bumped) replays clean,
// exactly like the storage injector's kill faults.
struct NetFaultInjection {
  bool enabled = false;
  uint64_t seed = 1;
  double rate = 1.0;
  uint64_t after_writes = 0;   // spare the first N writes (handshake etc.)
  uint64_t generation = 0;     // this session's incarnation
  uint64_t fails = 1;          // generations [0, fails) fault
  uint32_t kinds = 0;          // net subset of FaultKind bits
  double stall_ms = 1000.0;    // how long a kStall write plays dead
};

// Builds the injection config for one worker session from a parsed fault
// spec; disabled when the spec carries no network kinds.
NetFaultInjection NetFaultsFromSpec(const FaultInjectionConfig& config,
                                    uint64_t generation);

// TCP transport with deadlines. `io_timeout_ms` bounds every Write and, when
// `read_timeout_ms` > 0, every Read: the socket timeout arms the kernel
// bound and a wall-clock check stops EINTR/short-transfer loops from
// extending it. read_timeout_ms == 0 leaves reads blocking — the worker
// server waits indefinitely for the next request by design; only the
// coordinator must never hang.
class TcpTransport : public Transport {
 public:
  TcpTransport(int fd, uint64_t io_timeout_ms, uint64_t read_timeout_ms,
               NetFaultInjection faults = NetFaultInjection());
  ~TcpTransport() override { Close(); }

  Status Read(void* data, size_t size, size_t* bytes_read) override;
  Status Write(const void* data, size_t size) override;
  void Close() override;

  int fd() const { return fd_; }

  // The worker server learns the session's fault config and write deadline
  // from the Hello — which arrives over this very transport — so both are
  // armed after construction. The write ordinal keeps counting from the
  // handshake.
  void SetFaults(NetFaultInjection faults) { faults_ = faults; }
  void SetWriteTimeoutMs(uint64_t io_timeout_ms);

 private:
  // True when write ordinal `ordinal` should be sabotaged, and with what.
  bool PickFault(uint64_t ordinal, FaultKind* kind) const;
  // Sets SO_LINGER(0) and closes, so the peer sees RST, not orderly EOF.
  void AbortConnection();

  int fd_ = -1;
  uint64_t io_timeout_ms_ = 0;
  uint64_t read_timeout_ms_ = 0;
  NetFaultInjection faults_;
  uint64_t writes_ = 0;
};

// Connects to host:port. One attempt; callers wrap it in RetryWithBackoff
// for discovery/reconnect. `io_timeout_ms` also bounds the connect itself.
Result<int> TcpConnect(const std::string& host, uint16_t port,
                       uint64_t io_timeout_ms);

// Binds and listens on host:port (port 0 = ephemeral); returns the fd.
// `bound_port` receives the actual port.
Result<int> TcpListen(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

}  // namespace qarm

#endif  // QARM_DIST_TRANSPORT_H_
