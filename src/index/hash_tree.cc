#include "index/hash_tree.h"

#include <algorithm>

#include "common/macros.h"

namespace qarm {

struct HashTree::Node {
  bool is_leaf = true;
  // Leaf payload: itemset ids.
  std::vector<int32_t> ids;
  // Itemsets whose length equals this node's depth: all their items were
  // consumed on the path here, so they are subsets of any transaction that
  // reaches this node.
  std::vector<int32_t> complete_ids;
  // Interior payload.
  std::vector<std::unique_ptr<Node>> children;
};

HashTree::HashTree(size_t leaf_capacity, size_t fanout)
    : leaf_capacity_(leaf_capacity),
      fanout_(fanout),
      root_(std::make_unique<Node>()) {
  QARM_CHECK_GT(leaf_capacity_, 0u);
  QARM_CHECK_GT(fanout_, 1u);
}

HashTree::~HashTree() = default;

void HashTree::Insert(std::span<const int32_t> itemset, int32_t id) {
  QARM_CHECK(!frozen_);
  QARM_CHECK_GE(id, 0);
  for (size_t i = 1; i < itemset.size(); ++i) {
    QARM_CHECK_LT(itemset[i - 1], itemset[i]);
  }
  if (static_cast<size_t>(id) >= itemsets_.size()) {
    itemsets_.resize(static_cast<size_t>(id) + 1);
  }
  itemsets_[static_cast<size_t>(id)].assign(itemset.begin(), itemset.end());
  InsertRec(root_.get(), 0, itemset, id);
  ++num_itemsets_;
}

void HashTree::InsertRec(Node* node, size_t depth,
                         std::span<const int32_t> itemset, int32_t id) {
  if (!node->is_leaf) {
    if (itemset.size() == depth) {
      node->complete_ids.push_back(id);
      return;
    }
    size_t bucket =
        static_cast<size_t>(static_cast<uint32_t>(itemset[depth])) % fanout_;
    InsertRec(node->children[bucket].get(), depth + 1, itemset, id);
    return;
  }
  node->ids.push_back(id);
  if (node->ids.size() > leaf_capacity_) SplitLeaf(node, depth);
}

void HashTree::SplitLeaf(Node* node, size_t depth) {
  // Refuse to split if every resident itemset is exhausted at this depth
  // (they would all become complete_ids, and splitting gains nothing).
  bool any_splittable = false;
  for (int32_t id : node->ids) {
    if (itemsets_[static_cast<size_t>(id)].size() > depth) {
      any_splittable = true;
      break;
    }
  }
  if (!any_splittable) return;

  std::vector<int32_t> ids = std::move(node->ids);
  node->ids.clear();
  node->is_leaf = false;
  node->children.resize(fanout_);
  for (auto& child : node->children) child = std::make_unique<Node>();
  for (int32_t id : ids) {
    InsertRec(node, depth, itemsets_[static_cast<size_t>(id)], id);
  }
}

int32_t HashTree::FlattenRec(const Node& node) {
  const int32_t index = static_cast<int32_t>(flat_nodes_.size());
  flat_nodes_.emplace_back();
  // Leaf ids and interior complete_ids play the same role in a probe
  // ("verify containment, report"), so they share the ids pool.
  const std::vector<int32_t>& ids =
      node.is_leaf ? node.ids : node.complete_ids;
  flat_nodes_[index].ids_begin = static_cast<uint32_t>(flat_ids_.size());
  flat_ids_.insert(flat_ids_.end(), ids.begin(), ids.end());
  flat_nodes_[index].ids_end = static_cast<uint32_t>(flat_ids_.size());
  if (node.is_leaf) return index;

  const size_t children_begin = flat_children_.size();
  flat_children_.resize(children_begin + fanout_, -1);
  for (size_t b = 0; b < fanout_; ++b) {
    // Recursion appends to flat_children_, so re-index after each call.
    const int32_t child = FlattenRec(*node.children[b]);
    flat_children_[children_begin + b] = child;
  }
  flat_nodes_[index].children_begin = static_cast<int32_t>(children_begin);
  return index;
}

void HashTree::Freeze() {
  if (frozen_) return;
  itemset_offsets_.assign(1, 0);
  itemset_offsets_.reserve(itemsets_.size() + 1);
  for (const std::vector<int32_t>& set : itemsets_) {
    itemset_pool_.insert(itemset_pool_.end(), set.begin(), set.end());
    itemset_offsets_.push_back(static_cast<uint32_t>(itemset_pool_.size()));
  }
  FlattenRec(*root_);
  root_.reset();  // the pointer tree is dead weight from here on
  frozen_ = true;
}

bool HashTree::IsSubsetFlat(int32_t id,
                            std::span<const int32_t> transaction) const {
  const int32_t* begin =
      itemset_pool_.data() + itemset_offsets_[static_cast<size_t>(id)];
  const int32_t* end =
      itemset_pool_.data() + itemset_offsets_[static_cast<size_t>(id) + 1];
  size_t t = 0;
  for (const int32_t* item = begin; item != end; ++item) {
    while (t < transaction.size() && transaction[t] < *item) ++t;
    if (t == transaction.size() || transaction[t] != *item) return false;
    ++t;
  }
  return true;
}

bool HashTree::IsSubset(std::span<const int32_t> itemset,
                        std::span<const int32_t> transaction) const {
  size_t t = 0;
  for (int32_t item : itemset) {
    while (t < transaction.size() && transaction[t] < item) ++t;
    if (t == transaction.size() || transaction[t] != item) return false;
    ++t;
  }
  return true;
}

void HashTree::ForEachSubset(std::span<const int32_t> transaction,
                             const std::function<void(int32_t)>& fn) const {
  ForEachSubset(transaction, fn, &scratch_);
}

void HashTree::ForEachSubset(std::span<const int32_t> transaction,
                             const std::function<void(int32_t)>& fn,
                             SubsetScratch* scratch) const {
  if (scratch->stamps.size() < itemsets_.size()) {
    scratch->stamps.resize(itemsets_.size(), 0);
  }
  ++scratch->generation;
  if (frozen_) {
    SearchFlat(0, transaction, 0, fn, *scratch);
  } else {
    SearchRec(root_.get(), transaction, 0, fn, *scratch);
  }
}

void HashTree::SearchFlat(int32_t node_index,
                          std::span<const int32_t> transaction, size_t start,
                          const std::function<void(int32_t)>& fn,
                          SubsetScratch& scratch) const {
  const FlatNode& node = flat_nodes_[static_cast<size_t>(node_index)];
  // Leaf ids and interior complete_ids are both routed here by hashes of
  // their items; collisions mean containment must still be verified.
  for (uint32_t i = node.ids_begin; i != node.ids_end; ++i) {
    const int32_t id = flat_ids_[i];
    if (!IsSubsetFlat(id, transaction)) continue;
    uint64_t& stamp = scratch.stamps[static_cast<size_t>(id)];
    if (stamp == scratch.generation) continue;
    stamp = scratch.generation;
    fn(id);
  }
  if (node.children_begin < 0) return;
  const int32_t* children =
      flat_children_.data() + static_cast<size_t>(node.children_begin);
  for (size_t i = start; i < transaction.size(); ++i) {
    size_t bucket =
        static_cast<size_t>(static_cast<uint32_t>(transaction[i])) % fanout_;
    const int32_t child = children[bucket];
    if (child < 0) continue;
    __builtin_prefetch(&flat_nodes_[static_cast<size_t>(child)]);
    SearchFlat(child, transaction, i + 1, fn, scratch);
  }
}

void HashTree::SearchRec(const Node* node,
                         std::span<const int32_t> transaction, size_t start,
                         const std::function<void(int32_t)>& fn,
                         SubsetScratch& scratch) const {
  auto report = [&](int32_t id) {
    uint64_t& stamp = scratch.stamps[static_cast<size_t>(id)];
    if (stamp == scratch.generation) return;
    stamp = scratch.generation;
    fn(id);
  };

  if (node->is_leaf) {
    for (int32_t id : node->ids) {
      const std::vector<int32_t>& set = itemsets_[static_cast<size_t>(id)];
      if (IsSubset(set, transaction)) report(id);
    }
    return;
  }
  // complete_ids were routed here by hashes of their items; different items
  // can collide into the same buckets, so containment must still be
  // verified.
  for (int32_t id : node->complete_ids) {
    const std::vector<int32_t>& set = itemsets_[static_cast<size_t>(id)];
    if (IsSubset(set, transaction)) report(id);
  }
  for (size_t i = start; i < transaction.size(); ++i) {
    size_t bucket =
        static_cast<size_t>(static_cast<uint32_t>(transaction[i])) % fanout_;
    SearchRec(node->children[bucket].get(), transaction, i + 1, fn, scratch);
  }
}

}  // namespace qarm
