// The hash-tree of [AS94]: stores a set of sorted integer itemsets and, for
// a given sorted transaction, enumerates every stored itemset contained in
// it, visiting only a small fraction of the candidates. Used by the boolean
// Apriori baseline (candidates per pass) and by the quantitative miner
// (locating super-candidates by their categorical items, Section 5.2).
#ifndef QARM_INDEX_HASH_TREE_H_
#define QARM_INDEX_HASH_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace qarm {

// Itemsets are identified by dense ids 0..N-1 assigned by the caller.
// Items within an itemset must be sorted ascending and unique; itemsets of
// different lengths may coexist (the super-candidate use case).
class HashTree {
 public:
  // `leaf_capacity`: max itemsets in a leaf before it splits;
  // `fanout`: hash buckets per interior node.
  explicit HashTree(size_t leaf_capacity = 8, size_t fanout = 32);
  ~HashTree();

  HashTree(const HashTree&) = delete;
  HashTree& operator=(const HashTree&) = delete;
  HashTree(HashTree&&) = default;
  HashTree& operator=(HashTree&&) = default;

  // Inserts a sorted itemset under id `id`. Ids must be dense (0..N-1 in any
  // order) — they index the dedup stamp table. Insertion is only allowed
  // before Freeze().
  void Insert(std::span<const int32_t> itemset, int32_t id);

  // Flattens the pointer tree into the probe-optimized layout: nodes in one
  // contiguous arena (children as an index array per interior node, leaf /
  // complete ids and the stored itemsets in contiguous pools) so the probe
  // hot path walks arrays and can prefetch the next level instead of
  // chasing per-node heap allocations. Probing works before and after —
  // Freeze only changes speed, never results — but Insert afterwards is a
  // programming error (checked). Idempotent.
  void Freeze();
  bool frozen() const { return frozen_; }

  // Per-probe dedup state: a leaf can be reached through several transaction
  // items, so matches are deduplicated with per-id generation stamps. A
  // scratch belongs to one probing thread; concurrent ForEachSubset calls on
  // a shared (no longer mutated) tree are safe as long as each caller passes
  // its own scratch.
  struct SubsetScratch {
    std::vector<uint64_t> stamps;
    uint64_t generation = 0;
  };

  // Calls `fn(id)` exactly once for every stored itemset that is a subset of
  // the sorted `transaction`. The empty itemset, if inserted, matches every
  // transaction. This overload uses an internal scratch and must not be
  // called concurrently.
  void ForEachSubset(std::span<const int32_t> transaction,
                     const std::function<void(int32_t)>& fn) const;

  // Thread-safe overload: all tree state is read-only; the mutable probe
  // state lives in the caller-owned `scratch`.
  void ForEachSubset(std::span<const int32_t> transaction,
                     const std::function<void(int32_t)>& fn,
                     SubsetScratch* scratch) const;

  size_t size() const { return num_itemsets_; }

 private:
  struct Node;

  // One node of the frozen layout. Both leaf ids and interior complete_ids
  // are "check containment, report" — they share the ids span; only
  // interior nodes have a children block (fanout_ consecutive entries in
  // flat_children_, -1 for an absent child).
  struct FlatNode {
    int32_t children_begin = -1;  // -1: leaf
    uint32_t ids_begin = 0;
    uint32_t ids_end = 0;
  };

  void InsertRec(Node* node, size_t depth, std::span<const int32_t> itemset,
                 int32_t id);
  void SplitLeaf(Node* node, size_t depth);
  void SearchRec(const Node* node, std::span<const int32_t> transaction,
                 size_t start, const std::function<void(int32_t)>& fn,
                 SubsetScratch& scratch) const;
  void SearchFlat(int32_t node_index, std::span<const int32_t> transaction,
                  size_t start, const std::function<void(int32_t)>& fn,
                  SubsetScratch& scratch) const;
  int32_t FlattenRec(const Node& node);
  bool IsSubset(std::span<const int32_t> itemset,
                std::span<const int32_t> transaction) const;
  bool IsSubsetFlat(int32_t id, std::span<const int32_t> transaction) const;

  size_t leaf_capacity_;
  size_t fanout_;
  std::unique_ptr<Node> root_;
  size_t num_itemsets_ = 0;

  // Stored itemsets, indexed by id (for the leaf containment check).
  std::vector<std::vector<int32_t>> itemsets_;

  // Frozen layout (Freeze()); empty until then.
  bool frozen_ = false;
  std::vector<FlatNode> flat_nodes_;
  std::vector<int32_t> flat_children_;
  std::vector<int32_t> flat_ids_;
  // Itemsets flattened id -> [offsets_[id], offsets_[id + 1]) in pool.
  std::vector<uint32_t> itemset_offsets_;
  std::vector<int32_t> itemset_pool_;

  // Scratch backing the convenience (serial) ForEachSubset overload.
  mutable SubsetScratch scratch_;
};

}  // namespace qarm

#endif  // QARM_INDEX_HASH_TREE_H_
