// The n-dimensional counting array of Section 5.2: one cell per combination
// of quantitative-attribute values in a super-candidate. Per record the work
// is O(dims) (index into each dimension, bump one cell); at the end of the
// pass the support of each candidate rectangle is the sum over the cells it
// covers.
#ifndef QARM_INDEX_NDIM_ARRAY_H_
#define QARM_INDEX_NDIM_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qarm {

// Inclusive integer hyper-rectangle in the mapped domain: dimension d spans
// [lo[d], hi[d]].
struct IntRect {
  std::vector<int32_t> lo;
  std::vector<int32_t> hi;

  size_t dims() const { return lo.size(); }
  bool Contains(const int32_t* point) const {
    for (size_t d = 0; d < lo.size(); ++d) {
      if (point[d] < lo[d] || point[d] > hi[d]) return false;
    }
    return true;
  }
  // Number of integer cells covered.
  uint64_t CellCount() const {
    uint64_t cells = 1;
    for (size_t d = 0; d < lo.size(); ++d) {
      cells *= static_cast<uint64_t>(hi[d] - lo[d] + 1);
    }
    return cells;
  }
};

// Dense counting grid over the cross product of the dimension sizes.
class NDimArray {
 public:
  // `dim_sizes[d]` is the number of distinct mapped values of dimension d;
  // valid coordinates are [0, dim_sizes[d]).
  explicit NDimArray(std::vector<int32_t> dim_sizes);

  size_t dims() const { return dim_sizes_.size(); }
  uint64_t num_cells() const { return cells_.size(); }
  const std::vector<int32_t>& dim_sizes() const { return dim_sizes_; }
  // Row-major strides (last dimension contiguous). The kernel scan derives
  // its int32 strides from these after checking FlatIndexFitsInt32().
  const std::vector<uint64_t>& strides() const { return strides_; }

  // Bytes this grid's cells occupy.
  uint64_t bytes() const { return cells_.size() * sizeof(uint32_t); }

  // Bytes a grid with these dimensions would occupy (the Section 5.2 memory
  // heuristic compares this against the R*-tree estimate). Saturates at
  // UINT64_MAX on overflow.
  static uint64_t EstimateBytes(const std::vector<int32_t>& dim_sizes);

  // Increments the cell at `point` (dims() coordinates).
  void Increment(const int32_t* point);

  // Flat-index increments for the SIMD scan kernels, which compute the cell
  // index vectorized (count_kernels.h flat_index) and scatter scalar.
  void IncrementFlat(size_t index) { ++cells_[index]; }
  void AtomicIncrementFlat(size_t index);

  // True when every flat index fits an int32 — the precondition of the
  // vectorized index computation (strides then fit int32 too).
  bool FlatIndexFitsInt32() const { return cells_.size() <= 0x7fffffffu; }

  // Thread-safe increment for grids shared across scan workers: a relaxed
  // atomic add on the cell. All concurrent writers of a grid must use this
  // mode — mixing AtomicIncrement with concurrent plain Increment on the
  // same grid is a data race. Counts are exact regardless of interleaving.
  void AtomicIncrement(const int32_t* point);

  // Adds every cell of `other` into this grid (same dimensions; neither may
  // have prefix sums built). Used to reduce per-thread grids after a
  // sharded scan.
  void AddFrom(const NDimArray& other);

  // Converts the grid to inclusive n-dimensional prefix sums, making
  // CountRect O(2^dims) instead of a cell sweep. Call once, after all
  // Increment()s; Increment must not be called afterwards.
  void BuildPrefixSums();
  bool prefix_sums_built() const { return prefix_built_; }

  // Sum of all cells covered by `rect` (clipped to the grid). Uses
  // inclusion-exclusion when BuildPrefixSums() has run, a sweep otherwise.
  uint64_t CountRect(const IntRect& rect) const;

  // Batched CountRect over `num` rectangles given dimension-major
  // ("structure of arrays") bounds: rectangle m spans [los[d * num + m],
  // his[d * num + m]] in dimension d. Requires BuildPrefixSums(); results
  // are exactly CountRect of each rectangle (counts fit uint32 because the
  // cells are uint32). The hot path of the per-pass collect phase: the 1-
  // and 2-dimensional cases run vectorized (AVX2 gathers) when the active
  // ISA allows, with a scalar allocation-free fallback elsewhere — every
  // path is exact, so results never depend on the ISA.
  void CountRects(const int32_t* los, const int32_t* his, size_t num,
                  uint32_t* out) const;

  // Raw cell accessor (tests; invalid after BuildPrefixSums).
  uint64_t CellAt(const int32_t* point) const;

 private:
  size_t FlatIndex(const int32_t* point) const;
  uint64_t CountRectSweep(const std::vector<int32_t>& lo,
                          const std::vector<int32_t>& hi) const;
  // Allocation-free inclusion-exclusion over pre-clipped bounds (lo[d] >= 0,
  // hi[d] < dim_sizes_[d], lo[d] <= hi[d]).
  uint64_t CountRectPrefix(const int32_t* lo, const int32_t* hi) const;

  std::vector<int32_t> dim_sizes_;
  std::vector<uint64_t> strides_;
  std::vector<uint32_t> cells_;
  bool prefix_built_ = false;
};

}  // namespace qarm

#endif  // QARM_INDEX_NDIM_ARRAY_H_
