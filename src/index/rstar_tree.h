// R*-tree [BKSS90] over low-dimensional rectangles, used by the support-
// counting phase (Section 5.2) when a super-candidate's n-dimensional array
// would need too much memory. Implements ChooseSubtree with overlap
// minimization at the leaf level, the R* topological split (axis by minimum
// margin, distribution by minimum overlap), and forced reinsertion.
#ifndef QARM_INDEX_RSTAR_TREE_H_
#define QARM_INDEX_RSTAR_TREE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace qarm {

// Compile-time cap on tree dimensionality. Super-candidates are bounded by
// the number of quantitative attributes in a rule; 16 is far beyond any
// practical itemset.
inline constexpr size_t kRStarMaxDims = 16;

// Closed rectangle with runtime dimensionality (<= kRStarMaxDims).
// Coordinates are doubles; mapped integer ids are represented exactly.
struct RStarRect {
  std::array<double, kRStarMaxDims> lo{};
  std::array<double, kRStarMaxDims> hi{};

  static RStarRect FromRanges(const std::vector<std::pair<double, double>>& r);

  bool ContainsPoint(const double* point, size_t dims) const {
    for (size_t d = 0; d < dims; ++d) {
      if (point[d] < lo[d] || point[d] > hi[d]) return false;
    }
    return true;
  }
};

// R*-tree mapping rectangles to int32 payload ids.
class RStarTree {
 public:
  // `dims`: dimensionality of all rectangles; `max_entries`: node capacity
  // (min fill is 40%, reinsert fraction 30%, per the paper's defaults).
  explicit RStarTree(size_t dims, size_t max_entries = 16);
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  // Inserts `rect` with payload `id`.
  void Insert(const RStarRect& rect, int32_t id);

  // Calls `fn(id)` for every stored rectangle containing `point`
  // (`dims()` coordinates). A rectangle inserted k times fires k times.
  // Touches no shared mutable state (the DFS stack is a local), so
  // concurrent calls on a tree that is no longer being mutated are safe —
  // the parallel support-counting scan relies on this.
  void ForEachContaining(const double* point,
                         const std::function<void(int32_t)>& fn) const;

  // Collects ids of all rectangles intersecting `query` (used by tests).
  void CollectIntersecting(const RStarRect& query,
                           std::vector<int32_t>* out) const;

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }
  size_t height() const;

  // Rough memory estimate for `num_rects` rectangles of `dims` dimensions,
  // for the Section 5.2 array-vs-tree heuristic.
  static uint64_t EstimateBytes(size_t num_rects, size_t dims);

  // Validates tree invariants (MBR containment, fill factors); tests only.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry;

  void InsertEntry(Entry entry, int level, bool allow_reinsert);
  Node* ChooseSubtree(const RStarRect& rect, int target_level,
                      std::vector<Node*>* path);
  void OverflowTreatment(Node* node, std::vector<Node*>& path,
                         bool allow_reinsert);
  void Reinsert(Node* node, std::vector<Node*>& path);
  void Split(Node* node, std::vector<Node*>& path);
  void AdjustPath(std::vector<Node*>& path);

  size_t dims_;
  size_t max_entries_;
  size_t min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace qarm

#endif  // QARM_INDEX_RSTAR_TREE_H_
