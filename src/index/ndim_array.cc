#include "index/ndim_array.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/cpu_dispatch.h"
#include "common/macros.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QARM_NDIM_AVX2 1
#include <immintrin.h>
#else
#define QARM_NDIM_AVX2 0
#endif

namespace qarm {
namespace {

// The reduction/prefix building block: dst[i] += src[i]. `dst` and `src`
// must not overlap within 8 elements when the vector path runs (callers
// guarantee a distance of at least 8 or use the scalar path).
void AddSpanScalar(uint32_t* dst, const uint32_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

#if QARM_NDIM_AVX2
__attribute__((target("avx2"))) void AddSpanAvx2(uint32_t* dst,
                                                 const uint32_t* src,
                                                 size_t n) {
  const size_t vec = n / 8 * 8;
  for (size_t i = 0; i < vec; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi32(a, b));
  }
  for (size_t i = vec; i < n; ++i) dst[i] += src[i];
}

// Batched 1-d rectangle counts over full prefix sums: out[m] =
// P[min(hi[m], dim-1)] - P[max(lo[m], 0) - 1] with out-of-range and empty
// rectangles zeroed — exactly CountRect, eight rectangles per iteration.
__attribute__((target("avx2"))) void CountRects1dAvx2(
    const uint32_t* cells, int32_t dim, const int32_t* los,
    const int32_t* his, size_t num, uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i dim_m1 = _mm256_set1_epi32(dim - 1);
  const int* base = reinterpret_cast<const int*>(cells);
  const size_t vec = num / 8 * 8;
  for (size_t i = 0; i < vec; i += 8) {
    const __m256i lo = _mm256_max_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(los + i)), zero);
    const __m256i hi = _mm256_min_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(his + i)),
        dim_m1);
    const __m256i valid =
        _mm256_xor_si256(_mm256_cmpgt_epi32(lo, hi), _mm256_set1_epi32(-1));
    const __m256i t_hi =
        _mm256_mask_i32gather_epi32(zero, base, hi, valid, 4);
    const __m256i lo_m1 = _mm256_sub_epi32(lo, _mm256_set1_epi32(1));
    const __m256i lo_ok =
        _mm256_and_si256(valid, _mm256_cmpgt_epi32(lo, zero));
    const __m256i t_lo =
        _mm256_mask_i32gather_epi32(zero, base, lo_m1, lo_ok, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi32(t_hi, t_lo));
  }
  for (size_t i = vec; i < num; ++i) {
    const int32_t lo = std::max(los[i], 0);
    const int32_t hi = std::min(his[i], dim - 1);
    out[i] = lo > hi ? 0 : cells[hi] - (lo > 0 ? cells[lo - 1] : 0);
  }
}

// Batched 2-d inclusion-exclusion: four masked gathers per eight
// rectangles. Signed epi32 arithmetic is exact because the caller gates on
// total count <= INT32_MAX.
__attribute__((target("avx2"))) void CountRects2dAvx2(
    const uint32_t* cells, int32_t dim0, int32_t dim1, int32_t stride0,
    const int32_t* lo0s, const int32_t* hi0s, const int32_t* lo1s,
    const int32_t* hi1s, size_t num, uint32_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(-1);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i d0_m1 = _mm256_set1_epi32(dim0 - 1);
  const __m256i d1_m1 = _mm256_set1_epi32(dim1 - 1);
  const __m256i s0 = _mm256_set1_epi32(stride0);
  const int* base = reinterpret_cast<const int*>(cells);
  const size_t vec = num / 8 * 8;
  for (size_t i = 0; i < vec; i += 8) {
    const __m256i lo0 = _mm256_max_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo0s + i)), zero);
    const __m256i hi0 = _mm256_min_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi0s + i)),
        d0_m1);
    const __m256i lo1 = _mm256_max_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo1s + i)), zero);
    const __m256i hi1 = _mm256_min_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi1s + i)),
        d1_m1);
    const __m256i valid = _mm256_xor_si256(
        _mm256_or_si256(_mm256_cmpgt_epi32(lo0, hi0),
                        _mm256_cmpgt_epi32(lo1, hi1)),
        ones);
    const __m256i a = _mm256_sub_epi32(lo0, one);  // >= -1
    const __m256i b = _mm256_sub_epi32(lo1, one);
    const __m256i a_ok =
        _mm256_and_si256(valid, _mm256_cmpgt_epi32(lo0, zero));
    const __m256i b_ok =
        _mm256_and_si256(valid, _mm256_cmpgt_epi32(lo1, zero));
    const __m256i ab_ok = _mm256_and_si256(a_ok, b_ok);

    const __m256i hi0_s = _mm256_mullo_epi32(hi0, s0);
    const __m256i a_s = _mm256_mullo_epi32(a, s0);
    const __m256i t00 = _mm256_mask_i32gather_epi32(
        zero, base, _mm256_add_epi32(hi0_s, hi1), valid, 4);
    const __m256i t10 = _mm256_mask_i32gather_epi32(
        zero, base, _mm256_add_epi32(a_s, hi1), a_ok, 4);
    const __m256i t01 = _mm256_mask_i32gather_epi32(
        zero, base, _mm256_add_epi32(hi0_s, b), b_ok, 4);
    const __m256i t11 = _mm256_mask_i32gather_epi32(
        zero, base, _mm256_add_epi32(a_s, b), ab_ok, 4);
    const __m256i count = _mm256_add_epi32(
        _mm256_sub_epi32(_mm256_sub_epi32(t00, t10), t01), t11);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), count);
  }
  for (size_t i = vec; i < num; ++i) {
    const int32_t lo0 = std::max(lo0s[i], 0);
    const int32_t hi0 = std::min(hi0s[i], dim0 - 1);
    const int32_t lo1 = std::max(lo1s[i], 0);
    const int32_t hi1 = std::min(hi1s[i], dim1 - 1);
    if (lo0 > hi0 || lo1 > hi1) {
      out[i] = 0;
      continue;
    }
    auto p = [&](int32_t x, int32_t y) -> uint32_t {
      return (x < 0 || y < 0) ? 0 : cells[static_cast<size_t>(x) *
                                              static_cast<size_t>(stride0) +
                                          static_cast<size_t>(y)];
    };
    out[i] = p(hi0, hi1) - p(lo0 - 1, hi1) - p(hi0, lo1 - 1) +
             p(lo0 - 1, lo1 - 1);
  }
}
#endif  // QARM_NDIM_AVX2

void AddSpan(uint32_t* dst, const uint32_t* src, size_t n) {
#if QARM_NDIM_AVX2
  if (ActiveIsa() == SimdIsa::kAvx2) {
    AddSpanAvx2(dst, src, n);
    return;
  }
#endif
  AddSpanScalar(dst, src, n);
}

}  // namespace

NDimArray::NDimArray(std::vector<int32_t> dim_sizes)
    : dim_sizes_(std::move(dim_sizes)) {
  QARM_CHECK(!dim_sizes_.empty());
  strides_.resize(dim_sizes_.size());
  uint64_t total = 1;
  // Last dimension is contiguous (row-major).
  for (size_t d = dim_sizes_.size(); d-- > 0;) {
    QARM_CHECK_GT(dim_sizes_[d], 0);
    strides_[d] = total;
    total *= static_cast<uint64_t>(dim_sizes_[d]);
  }
  cells_.assign(total, 0);
}

uint64_t NDimArray::EstimateBytes(const std::vector<int32_t>& dim_sizes) {
  uint64_t total = sizeof(uint32_t);
  for (int32_t size : dim_sizes) {
    if (size <= 0) return 0;
    uint64_t next = total * static_cast<uint64_t>(size);
    if (next / static_cast<uint64_t>(size) != total) {
      return std::numeric_limits<uint64_t>::max();
    }
    total = next;
  }
  return total;
}

size_t NDimArray::FlatIndex(const int32_t* point) const {
  uint64_t index = 0;
  for (size_t d = 0; d < dim_sizes_.size(); ++d) {
    QARM_DCHECK(point[d] >= 0 && point[d] < dim_sizes_[d]);
    index += static_cast<uint64_t>(point[d]) * strides_[d];
  }
  return static_cast<size_t>(index);
}

void NDimArray::Increment(const int32_t* point) {
  ++cells_[FlatIndex(point)];
}

void NDimArray::AtomicIncrement(const int32_t* point) {
  // uint32_t in a vector satisfies atomic_ref's alignment requirement, so
  // the plain storage doubles as the shared-atomic counting mode.
  std::atomic_ref<uint32_t> cell(cells_[FlatIndex(point)]);
  cell.fetch_add(1, std::memory_order_relaxed);
}

void NDimArray::AtomicIncrementFlat(size_t index) {
  std::atomic_ref<uint32_t> cell(cells_[index]);
  cell.fetch_add(1, std::memory_order_relaxed);
}

void NDimArray::AddFrom(const NDimArray& other) {
  QARM_CHECK(!prefix_built_ && !other.prefix_built_);
  QARM_CHECK(dim_sizes_ == other.dim_sizes_);
  AddSpan(cells_.data(), other.cells_.data(), cells_.size());
}

uint64_t NDimArray::CellAt(const int32_t* point) const {
  return cells_[FlatIndex(point)];
}

void NDimArray::BuildPrefixSums() {
  QARM_CHECK(!prefix_built_);
  // Running prefix along each dimension in turn yields the full
  // n-dimensional inclusive prefix sum.
  const size_t n = dim_sizes_.size();
  for (size_t d = 0; d < n; ++d) {
    const uint64_t stride = strides_[d];
    const uint64_t dim = static_cast<uint64_t>(dim_sizes_[d]);
    const uint64_t total = cells_.size();
    if (stride >= 8) {
      // Each slab of `stride` cells adds its fully-updated predecessor
      // slab; within a slab reads and writes are `stride` apart, so the
      // 8-wide vector add never crosses the dependence.
      for (uint64_t base = 0; base < total; base += stride * dim) {
        for (uint64_t k = 1; k < dim; ++k) {
          uint32_t* dst = cells_.data() + base + k * stride;
          AddSpan(dst, dst - stride, static_cast<size_t>(stride));
        }
      }
      continue;
    }
    // Iterate over all cells whose coordinate in dimension d is nonzero and
    // add the predecessor along d.
    for (uint64_t base = 0; base < total; base += stride * dim) {
      for (uint64_t i = stride; i < stride * dim; ++i) {
        cells_[base + i] += cells_[base + i - stride];
      }
    }
  }
  prefix_built_ = true;
}

uint64_t NDimArray::CountRect(const IntRect& rect) const {
  QARM_CHECK_EQ(rect.dims(), dim_sizes_.size());
  const size_t n = dim_sizes_.size();
  if (prefix_built_) {
    QARM_CHECK_LE(n, 63u);
    // Clip to the grid on the stack: this runs once per candidate rectangle
    // of every pass, so it must not allocate.
    int32_t lo[64], hi[64];
    for (size_t d = 0; d < n; ++d) {
      lo[d] = rect.lo[d] < 0 ? 0 : rect.lo[d];
      hi[d] = rect.hi[d] >= dim_sizes_[d] ? dim_sizes_[d] - 1 : rect.hi[d];
      if (lo[d] > hi[d]) return 0;
    }
    return CountRectPrefix(lo, hi);
  }
  std::vector<int32_t> lo(n), hi(n);
  for (size_t d = 0; d < n; ++d) {
    lo[d] = rect.lo[d] < 0 ? 0 : rect.lo[d];
    hi[d] = rect.hi[d] >= dim_sizes_[d] ? dim_sizes_[d] - 1 : rect.hi[d];
    if (lo[d] > hi[d]) return 0;
  }
  return CountRectSweep(lo, hi);
}

void NDimArray::CountRects(const int32_t* los, const int32_t* his, size_t num,
                           uint32_t* out) const {
  QARM_CHECK(prefix_built_);
  const size_t n = dim_sizes_.size();
  QARM_CHECK_LE(n, 63u);
#if QARM_NDIM_AVX2
  // The vector paths do signed 32-bit index arithmetic and gather-based
  // sums, so they require indices and the grand total (the last prefix
  // cell) to fit int32. Both paths compute exactly what the scalar
  // inclusion-exclusion computes.
  if (ActiveIsa() == SimdIsa::kAvx2 && FlatIndexFitsInt32() &&
      cells_.back() <= 0x7fffffffu) {
    if (n == 1) {
      CountRects1dAvx2(cells_.data(), dim_sizes_[0], los, his, num, out);
      return;
    }
    if (n == 2) {
      CountRects2dAvx2(cells_.data(), dim_sizes_[0], dim_sizes_[1],
                       static_cast<int32_t>(strides_[0]), los, his,
                       los + num, his + num, num, out);
      return;
    }
  }
#endif
  int32_t lo[64], hi[64];
  for (size_t m = 0; m < num; ++m) {
    bool empty = false;
    for (size_t d = 0; d < n; ++d) {
      const int32_t l = los[d * num + m];
      const int32_t h = his[d * num + m];
      lo[d] = l < 0 ? 0 : l;
      hi[d] = h >= dim_sizes_[d] ? dim_sizes_[d] - 1 : h;
      if (lo[d] > hi[d]) {
        empty = true;
        break;
      }
    }
    out[m] = empty ? 0 : static_cast<uint32_t>(CountRectPrefix(lo, hi));
  }
}

uint64_t NDimArray::CountRectPrefix(const int32_t* lo,
                                    const int32_t* hi) const {
  const size_t n = dim_sizes_.size();
  // Inclusion-exclusion over the 2^n corners: corners picking lo[d]-1 in an
  // odd number of dimensions are subtracted; any coordinate of -1 zeroes
  // the term.
  int64_t sum = 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    uint64_t index = 0;
    bool zero = false;
    int sign = 1;
    for (size_t d = 0; d < n; ++d) {
      int32_t coord;
      if (mask & (uint64_t{1} << d)) {
        coord = lo[d] - 1;
        sign = -sign;
      } else {
        coord = hi[d];
      }
      if (coord < 0) {
        zero = true;
        break;
      }
      index += static_cast<uint64_t>(coord) * strides_[d];
    }
    if (zero) continue;
    sum += sign * static_cast<int64_t>(cells_[index]);
  }
  QARM_DCHECK(sum >= 0);
  return static_cast<uint64_t>(sum);
}

uint64_t NDimArray::CountRectSweep(const std::vector<int32_t>& lo,
                                   const std::vector<int32_t>& hi) const {
  const size_t n = dim_sizes_.size();
  // Odometer walk over the covered cells.
  std::vector<int32_t> cursor = lo;
  uint64_t sum = 0;
  while (true) {
    // Innermost dimension is contiguous: sum the run directly.
    size_t base = FlatIndex(cursor.data());
    size_t run = static_cast<size_t>(hi[n - 1] - cursor[n - 1] + 1);
    for (size_t i = 0; i < run; ++i) sum += cells_[base + i];
    // Advance the odometer, skipping the innermost dimension.
    size_t d = n - 1;
    while (true) {
      if (d == 0) return sum;
      --d;
      if (cursor[d] < hi[d]) {
        ++cursor[d];
        for (size_t e = d + 1; e < n; ++e) cursor[e] = lo[e];
        break;
      }
    }
  }
}

}  // namespace qarm
