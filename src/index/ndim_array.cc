#include "index/ndim_array.h"

#include <atomic>
#include <limits>

#include "common/macros.h"

namespace qarm {

NDimArray::NDimArray(std::vector<int32_t> dim_sizes)
    : dim_sizes_(std::move(dim_sizes)) {
  QARM_CHECK(!dim_sizes_.empty());
  strides_.resize(dim_sizes_.size());
  uint64_t total = 1;
  // Last dimension is contiguous (row-major).
  for (size_t d = dim_sizes_.size(); d-- > 0;) {
    QARM_CHECK_GT(dim_sizes_[d], 0);
    strides_[d] = total;
    total *= static_cast<uint64_t>(dim_sizes_[d]);
  }
  cells_.assign(total, 0);
}

uint64_t NDimArray::EstimateBytes(const std::vector<int32_t>& dim_sizes) {
  uint64_t total = sizeof(uint32_t);
  for (int32_t size : dim_sizes) {
    if (size <= 0) return 0;
    uint64_t next = total * static_cast<uint64_t>(size);
    if (next / static_cast<uint64_t>(size) != total) {
      return std::numeric_limits<uint64_t>::max();
    }
    total = next;
  }
  return total;
}

size_t NDimArray::FlatIndex(const int32_t* point) const {
  uint64_t index = 0;
  for (size_t d = 0; d < dim_sizes_.size(); ++d) {
    QARM_DCHECK(point[d] >= 0 && point[d] < dim_sizes_[d]);
    index += static_cast<uint64_t>(point[d]) * strides_[d];
  }
  return static_cast<size_t>(index);
}

void NDimArray::Increment(const int32_t* point) {
  ++cells_[FlatIndex(point)];
}

void NDimArray::AtomicIncrement(const int32_t* point) {
  // uint32_t in a vector satisfies atomic_ref's alignment requirement, so
  // the plain storage doubles as the shared-atomic counting mode.
  std::atomic_ref<uint32_t> cell(cells_[FlatIndex(point)]);
  cell.fetch_add(1, std::memory_order_relaxed);
}

void NDimArray::AddFrom(const NDimArray& other) {
  QARM_CHECK(!prefix_built_ && !other.prefix_built_);
  QARM_CHECK(dim_sizes_ == other.dim_sizes_);
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
}

uint64_t NDimArray::CellAt(const int32_t* point) const {
  return cells_[FlatIndex(point)];
}

void NDimArray::BuildPrefixSums() {
  QARM_CHECK(!prefix_built_);
  // Running prefix along each dimension in turn yields the full
  // n-dimensional inclusive prefix sum.
  const size_t n = dim_sizes_.size();
  for (size_t d = 0; d < n; ++d) {
    const uint64_t stride = strides_[d];
    const uint64_t dim = static_cast<uint64_t>(dim_sizes_[d]);
    const uint64_t total = cells_.size();
    // Iterate over all cells whose coordinate in dimension d is nonzero and
    // add the predecessor along d.
    for (uint64_t base = 0; base < total; base += stride * dim) {
      for (uint64_t i = stride; i < stride * dim; ++i) {
        cells_[base + i] += cells_[base + i - stride];
      }
    }
  }
  prefix_built_ = true;
}

uint64_t NDimArray::CountRect(const IntRect& rect) const {
  QARM_CHECK_EQ(rect.dims(), dim_sizes_.size());
  const size_t n = dim_sizes_.size();
  // Clip to the grid.
  std::vector<int32_t> lo(n), hi(n);
  for (size_t d = 0; d < n; ++d) {
    lo[d] = rect.lo[d] < 0 ? 0 : rect.lo[d];
    hi[d] = rect.hi[d] >= dim_sizes_[d] ? dim_sizes_[d] - 1 : rect.hi[d];
    if (lo[d] > hi[d]) return 0;
  }
  return prefix_built_ ? CountRectPrefix(lo, hi) : CountRectSweep(lo, hi);
}

uint64_t NDimArray::CountRectPrefix(const std::vector<int32_t>& lo,
                                    const std::vector<int32_t>& hi) const {
  const size_t n = dim_sizes_.size();
  QARM_CHECK_LE(n, 63u);
  // Inclusion-exclusion over the 2^n corners: corners picking lo[d]-1 in an
  // odd number of dimensions are subtracted; any coordinate of -1 zeroes
  // the term.
  int64_t sum = 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    uint64_t index = 0;
    bool zero = false;
    int sign = 1;
    for (size_t d = 0; d < n; ++d) {
      int32_t coord;
      if (mask & (uint64_t{1} << d)) {
        coord = lo[d] - 1;
        sign = -sign;
      } else {
        coord = hi[d];
      }
      if (coord < 0) {
        zero = true;
        break;
      }
      index += static_cast<uint64_t>(coord) * strides_[d];
    }
    if (zero) continue;
    sum += sign * static_cast<int64_t>(cells_[index]);
  }
  QARM_DCHECK(sum >= 0);
  return static_cast<uint64_t>(sum);
}

uint64_t NDimArray::CountRectSweep(const std::vector<int32_t>& lo,
                                   const std::vector<int32_t>& hi) const {
  const size_t n = dim_sizes_.size();
  // Odometer walk over the covered cells.
  std::vector<int32_t> cursor = lo;
  uint64_t sum = 0;
  while (true) {
    // Innermost dimension is contiguous: sum the run directly.
    size_t base = FlatIndex(cursor.data());
    size_t run = static_cast<size_t>(hi[n - 1] - cursor[n - 1] + 1);
    for (size_t i = 0; i < run; ++i) sum += cells_[base + i];
    // Advance the odometer, skipping the innermost dimension.
    size_t d = n - 1;
    while (true) {
      if (d == 0) return sum;
      --d;
      if (cursor[d] < hi[d]) {
        ++cursor[d];
        for (size_t e = d + 1; e < n; ++e) cursor[e] = lo[e];
        break;
      }
    }
  }
}

}  // namespace qarm
