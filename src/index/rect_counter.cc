#include "index/rect_counter.h"

#include "common/macros.h"

namespace qarm {

ArrayRectangleCounter::ArrayRectangleCounter(std::vector<int32_t> dim_sizes,
                                             std::vector<IntRect> rects,
                                             bool use_prefix_sums)
    : array_(std::move(dim_sizes)),
      rects_(std::move(rects)),
      use_prefix_sums_(use_prefix_sums) {}

void ArrayRectangleCounter::ProcessPoint(const int32_t* point) {
  array_.Increment(point);
}

void ArrayRectangleCounter::Finalize() {
  if (use_prefix_sums_) array_.BuildPrefixSums();
}

void ArrayRectangleCounter::Collect(std::vector<uint64_t>* counts) const {
  counts->resize(rects_.size());
  for (size_t i = 0; i < rects_.size(); ++i) {
    (*counts)[i] = array_.CountRect(rects_[i]);
  }
}

RTreeRectangleCounter::RTreeRectangleCounter(size_t dims,
                                             const std::vector<IntRect>& rects)
    : dims_(dims), tree_(dims), counts_(rects.size(), 0) {
  for (size_t i = 0; i < rects.size(); ++i) {
    QARM_CHECK_EQ(rects[i].dims(), dims);
    RStarRect rect;
    for (size_t d = 0; d < dims; ++d) {
      rect.lo[d] = static_cast<double>(rects[i].lo[d]);
      rect.hi[d] = static_cast<double>(rects[i].hi[d]);
    }
    tree_.Insert(rect, static_cast<int32_t>(i));
  }
}

void RTreeRectangleCounter::ProcessPoint(const int32_t* point) {
  double coords[kRStarMaxDims];
  for (size_t d = 0; d < dims_; ++d) coords[d] = static_cast<double>(point[d]);
  tree_.ForEachContaining(
      coords, [this](int32_t id) { ++counts_[static_cast<size_t>(id)]; });
}

void RTreeRectangleCounter::Collect(std::vector<uint64_t>* counts) const {
  *counts = counts_;
}

CounterChoice ChooseCounter(const std::vector<int32_t>& dim_sizes,
                            size_t num_rects, uint64_t memory_budget_bytes) {
  CounterChoice choice;
  choice.array_bytes = NDimArray::EstimateBytes(dim_sizes);
  choice.tree_bytes = RStarTree::EstimateBytes(num_rects, dim_sizes.size());
  // The array wins on CPU whenever it fits; beyond the budget, fall back to
  // the tree unless the tree estimate is even larger (degenerate case of
  // few dimensions but enormous rectangle counts).
  choice.use_array = choice.array_bytes <= memory_budget_bytes ||
                     choice.array_bytes <= choice.tree_bytes;
  return choice;
}

std::unique_ptr<RectangleCounter> MakeRectangleCounter(
    std::vector<int32_t> dim_sizes, std::vector<IntRect> rects,
    uint64_t memory_budget_bytes) {
  CounterChoice choice =
      ChooseCounter(dim_sizes, rects.size(), memory_budget_bytes);
  if (choice.use_array) {
    return std::make_unique<ArrayRectangleCounter>(std::move(dim_sizes),
                                                   std::move(rects));
  }
  return std::make_unique<RTreeRectangleCounter>(dim_sizes.size(), rects);
}

}  // namespace qarm
