// Rectangle-containment counting for super-candidates (Section 5.2).
//
// A super-candidate's quantitative part is a set of n-dimensional integer
// rectangles; each database record projects to an n-dimensional point, and
// the support count of a candidate is the number of points inside its
// rectangle. Two engines implement this:
//   - ArrayRectangleCounter: the n-dimensional array (O(n) per record, cell
//     sweep at the end) — cheap CPU, memory proportional to the cell grid;
//   - RTreeRectangleCounter: rectangles in an R*-tree queried per point —
//     memory proportional to the rectangle count.
// MakeRectangleCounter picks between them with the paper's memory-ratio
// heuristic.
#ifndef QARM_INDEX_RECT_COUNTER_H_
#define QARM_INDEX_RECT_COUNTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/ndim_array.h"
#include "index/rstar_tree.h"

namespace qarm {

// Streaming counter: feed every record's point, then collect per-rectangle
// support counts.
class RectangleCounter {
 public:
  virtual ~RectangleCounter() = default;

  // Processes one record (dims coordinates in the mapped domain).
  virtual void ProcessPoint(const int32_t* point) = 0;

  // Called once after the last ProcessPoint, before Collect.
  virtual void Finalize() {}

  // Returns counts[i] = number of processed points inside rectangle i.
  virtual void Collect(std::vector<uint64_t>* counts) const = 0;

  // Engine name for logging/benchmarks ("ndim-array" / "rstar-tree").
  virtual const char* name() const = 0;
};

// Dense-grid engine.
class ArrayRectangleCounter final : public RectangleCounter {
 public:
  // `use_prefix_sums` converts the grid to prefix sums in Finalize(), making
  // each rectangle collection O(2^dims) instead of a cell sweep; disable it
  // to measure the paper's original sweep (bench_counting_structures).
  ArrayRectangleCounter(std::vector<int32_t> dim_sizes,
                        std::vector<IntRect> rects,
                        bool use_prefix_sums = true);

  void ProcessPoint(const int32_t* point) override;
  void Finalize() override;
  void Collect(std::vector<uint64_t>* counts) const override;
  const char* name() const override { return "ndim-array"; }

 private:
  NDimArray array_;
  std::vector<IntRect> rects_;
  bool use_prefix_sums_;
};

// R*-tree engine.
class RTreeRectangleCounter final : public RectangleCounter {
 public:
  RTreeRectangleCounter(size_t dims, const std::vector<IntRect>& rects);

  void ProcessPoint(const int32_t* point) override;
  void Collect(std::vector<uint64_t>* counts) const override;
  const char* name() const override { return "rstar-tree"; }

 private:
  size_t dims_;
  RStarTree tree_;
  std::vector<uint64_t> counts_;
};

// Decision record for the array-vs-tree choice (exposed for benchmarks).
struct CounterChoice {
  bool use_array = true;
  uint64_t array_bytes = 0;
  uint64_t tree_bytes = 0;
};

// The Section 5.2 heuristic: use the array unless its estimated memory
// exceeds both `memory_budget_bytes` and the R*-tree estimate.
CounterChoice ChooseCounter(const std::vector<int32_t>& dim_sizes,
                            size_t num_rects, uint64_t memory_budget_bytes);

// Builds the engine chosen by ChooseCounter.
std::unique_ptr<RectangleCounter> MakeRectangleCounter(
    std::vector<int32_t> dim_sizes, std::vector<IntRect> rects,
    uint64_t memory_budget_bytes);

}  // namespace qarm

#endif  // QARM_INDEX_RECT_COUNTER_H_
