#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace qarm {

RStarRect RStarRect::FromRanges(
    const std::vector<std::pair<double, double>>& r) {
  QARM_CHECK_LE(r.size(), kRStarMaxDims);
  RStarRect rect;
  for (size_t d = 0; d < r.size(); ++d) {
    rect.lo[d] = r[d].first;
    rect.hi[d] = r[d].second;
  }
  return rect;
}

namespace {

double Area(const RStarRect& r, size_t dims) {
  double area = 1.0;
  for (size_t d = 0; d < dims; ++d) area *= r.hi[d] - r.lo[d];
  return area;
}

double Margin(const RStarRect& r, size_t dims) {
  double margin = 0.0;
  for (size_t d = 0; d < dims; ++d) margin += r.hi[d] - r.lo[d];
  return margin;
}

RStarRect Union(const RStarRect& a, const RStarRect& b, size_t dims) {
  RStarRect out;
  for (size_t d = 0; d < dims; ++d) {
    out.lo[d] = std::min(a.lo[d], b.lo[d]);
    out.hi[d] = std::max(a.hi[d], b.hi[d]);
  }
  return out;
}

double OverlapArea(const RStarRect& a, const RStarRect& b, size_t dims) {
  double area = 1.0;
  for (size_t d = 0; d < dims; ++d) {
    double lo = std::max(a.lo[d], b.lo[d]);
    double hi = std::min(a.hi[d], b.hi[d]);
    if (hi <= lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

bool Intersects(const RStarRect& a, const RStarRect& b, size_t dims) {
  for (size_t d = 0; d < dims; ++d) {
    if (a.hi[d] < b.lo[d] || b.hi[d] < a.lo[d]) return false;
  }
  return true;
}

}  // namespace

struct RStarTree::Entry {
  RStarRect mbr;
  std::unique_ptr<Node> child;  // null for data entries
  int32_t id = -1;
};

struct RStarTree::Node {
  int level = 0;  // 0 = leaf
  std::vector<Entry> entries;

  RStarRect ComputeMbr(size_t dims) const {
    QARM_CHECK(!entries.empty());
    RStarRect mbr = entries[0].mbr;
    for (size_t i = 1; i < entries.size(); ++i) {
      mbr = Union(mbr, entries[i].mbr, dims);
    }
    return mbr;
  }
};

RStarTree::RStarTree(size_t dims, size_t max_entries)
    : dims_(dims),
      max_entries_(max_entries),
      min_entries_(std::max<size_t>(2, max_entries * 2 / 5)),
      root_(std::make_unique<Node>()) {
  QARM_CHECK_GT(dims_, 0u);
  QARM_CHECK_LE(dims_, kRStarMaxDims);
  QARM_CHECK_GE(max_entries_, 4u);
}

RStarTree::~RStarTree() = default;

uint64_t RStarTree::EstimateBytes(size_t num_rects, size_t dims) {
  // Data entries plus ~50% structural overhead for interior nodes and
  // vector slack.
  uint64_t per_entry = 2 * dims * sizeof(double) + 24;
  return num_rects * per_entry * 3 / 2;
}

size_t RStarTree::height() const {
  return static_cast<size_t>(root_->level) + 1;
}

void RStarTree::Insert(const RStarRect& rect, int32_t id) {
  Entry entry;
  entry.mbr = rect;
  entry.id = id;
  InsertEntry(std::move(entry), /*level=*/0, /*allow_reinsert=*/true);
  ++size_;
}

RStarTree::Node* RStarTree::ChooseSubtree(const RStarRect& rect,
                                          int target_level,
                                          std::vector<Node*>* path) {
  Node* node = root_.get();
  path->push_back(node);
  while (node->level != target_level) {
    QARM_CHECK_GT(node->level, target_level);
    const bool children_are_leaves = node->level == target_level + 1;
    size_t best = 0;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->entries.size(); ++i) {
      const RStarRect& mbr = node->entries[i].mbr;
      RStarRect enlarged = Union(mbr, rect, dims_);
      double area = Area(mbr, dims_);
      double enlarge = Area(enlarged, dims_) - area;
      double overlap_delta = 0.0;
      if (children_are_leaves) {
        // Overlap enlargement against sibling MBRs.
        for (size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta +=
              OverlapArea(enlarged, node->entries[j].mbr, dims_) -
              OverlapArea(mbr, node->entries[j].mbr, dims_);
        }
      }
      bool better;
      if (children_are_leaves) {
        better = overlap_delta < best_overlap ||
                 (overlap_delta == best_overlap &&
                  (enlarge < best_enlarge ||
                   (enlarge == best_enlarge && area < best_area)));
      } else {
        better = enlarge < best_enlarge ||
                 (enlarge == best_enlarge && area < best_area);
      }
      if (better) {
        best = i;
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    node = node->entries[best].child.get();
    path->push_back(node);
  }
  return node;
}

void RStarTree::AdjustPath(std::vector<Node*>& path) {
  // Recompute the MBR stored in each parent entry along the path.
  for (size_t i = path.size(); i-- > 1;) {
    Node* parent = path[i - 1];
    Node* child = path[i];
    for (Entry& entry : parent->entries) {
      if (entry.child.get() == child) {
        entry.mbr = child->ComputeMbr(dims_);
        break;
      }
    }
  }
}

void RStarTree::InsertEntry(Entry entry, int level, bool allow_reinsert) {
  std::vector<Node*> path;
  Node* node = ChooseSubtree(entry.mbr, level, &path);
  node->entries.push_back(std::move(entry));
  AdjustPath(path);
  if (node->entries.size() > max_entries_) {
    OverflowTreatment(node, path, allow_reinsert);
  }
}

void RStarTree::OverflowTreatment(Node* node, std::vector<Node*>& path,
                                  bool allow_reinsert) {
  if (node != root_.get() && allow_reinsert) {
    Reinsert(node, path);
  } else {
    Split(node, path);
  }
}

void RStarTree::Reinsert(Node* node, std::vector<Node*>& path) {
  const size_t p = std::max<size_t>(1, max_entries_ * 3 / 10);
  RStarRect node_mbr = node->ComputeMbr(dims_);

  // Distance of each entry's center from the node MBR center.
  auto center_distance = [&](const Entry& e) {
    double dist = 0.0;
    for (size_t d = 0; d < dims_; ++d) {
      double ec = (e.mbr.lo[d] + e.mbr.hi[d]) * 0.5;
      double nc = (node_mbr.lo[d] + node_mbr.hi[d]) * 0.5;
      dist += (ec - nc) * (ec - nc);
    }
    return dist;
  };

  std::vector<size_t> order(node->entries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return center_distance(node->entries[a]) >
           center_distance(node->entries[b]);
  });

  // Remove the p furthest entries.
  std::vector<Entry> removed;
  removed.reserve(p);
  std::vector<bool> remove_flag(node->entries.size(), false);
  for (size_t i = 0; i < p; ++i) remove_flag[order[i]] = true;
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - p);
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (remove_flag[i]) {
      removed.push_back(std::move(node->entries[i]));
    } else {
      kept.push_back(std::move(node->entries[i]));
    }
  }
  node->entries = std::move(kept);
  AdjustPath(path);

  // Close reinsert: nearest first. A further overflow at this level must
  // split (allow_reinsert = false) or reinsertion could loop forever.
  int level = node->level;
  for (size_t i = removed.size(); i-- > 0;) {
    InsertEntry(std::move(removed[i]), level, /*allow_reinsert=*/false);
  }
}

void RStarTree::Split(Node* node, std::vector<Node*>& path) {
  const size_t total = node->entries.size();
  const size_t m = min_entries_;
  QARM_CHECK_GE(total, 2 * m);

  // R* split: pick the axis with minimum margin sum over all candidate
  // distributions (both lower- and upper-bound sorts), then the
  // distribution with minimum overlap (ties: minimum total area).
  size_t best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin = std::numeric_limits<double>::infinity();

  auto sorted_order = [&](size_t axis, bool by_hi) {
    std::vector<size_t> order(total);
    for (size_t i = 0; i < total; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const RStarRect& ra = node->entries[a].mbr;
      const RStarRect& rb = node->entries[b].mbr;
      double ka = by_hi ? ra.hi[axis] : ra.lo[axis];
      double kb = by_hi ? rb.hi[axis] : rb.lo[axis];
      if (ka != kb) return ka < kb;
      double ta = by_hi ? ra.lo[axis] : ra.hi[axis];
      double tb = by_hi ? rb.lo[axis] : rb.hi[axis];
      return ta < tb;
    });
    return order;
  };

  auto margin_of_order = [&](const std::vector<size_t>& order) {
    // Prefix/suffix MBRs over the sorted order.
    std::vector<RStarRect> prefix(total), suffix(total);
    prefix[0] = node->entries[order[0]].mbr;
    for (size_t i = 1; i < total; ++i) {
      prefix[i] = Union(prefix[i - 1], node->entries[order[i]].mbr, dims_);
    }
    suffix[total - 1] = node->entries[order[total - 1]].mbr;
    for (size_t i = total - 1; i-- > 0;) {
      suffix[i] = Union(suffix[i + 1], node->entries[order[i]].mbr, dims_);
    }
    double margin_sum = 0.0;
    for (size_t split = m; split <= total - m; ++split) {
      margin_sum +=
          Margin(prefix[split - 1], dims_) + Margin(suffix[split], dims_);
    }
    return margin_sum;
  };

  for (size_t axis = 0; axis < dims_; ++axis) {
    for (bool by_hi : {false, true}) {
      double margin = margin_of_order(sorted_order(axis, by_hi));
      if (margin < best_margin) {
        best_margin = margin;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  std::vector<size_t> order = sorted_order(best_axis, best_axis_by_hi);
  std::vector<RStarRect> prefix(total), suffix(total);
  prefix[0] = node->entries[order[0]].mbr;
  for (size_t i = 1; i < total; ++i) {
    prefix[i] = Union(prefix[i - 1], node->entries[order[i]].mbr, dims_);
  }
  suffix[total - 1] = node->entries[order[total - 1]].mbr;
  for (size_t i = total - 1; i-- > 0;) {
    suffix[i] = Union(suffix[i + 1], node->entries[order[i]].mbr, dims_);
  }

  size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t split = m; split <= total - m; ++split) {
    double overlap = OverlapArea(prefix[split - 1], suffix[split], dims_);
    double area = Area(prefix[split - 1], dims_) + Area(suffix[split], dims_);
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }

  auto new_node = std::make_unique<Node>();
  new_node->level = node->level;
  std::vector<Entry> first_group;
  first_group.reserve(best_split);
  for (size_t i = 0; i < best_split; ++i) {
    first_group.push_back(std::move(node->entries[order[i]]));
  }
  for (size_t i = best_split; i < total; ++i) {
    new_node->entries.push_back(std::move(node->entries[order[i]]));
  }
  node->entries = std::move(first_group);

  if (node == root_.get()) {
    auto new_root = std::make_unique<Node>();
    new_root->level = node->level + 1;
    Entry left;
    left.mbr = node->ComputeMbr(dims_);
    left.child = std::move(root_);
    Entry right;
    right.mbr = new_node->ComputeMbr(dims_);
    right.child = std::move(new_node);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  // Attach the new node to the parent; the parent may now overflow.
  QARM_CHECK_GE(path.size(), 2u);
  QARM_CHECK(path.back() == node);
  path.pop_back();
  Node* parent = path.back();
  AdjustPath(path);
  for (Entry& entry : parent->entries) {
    if (entry.child.get() == node) {
      entry.mbr = node->ComputeMbr(dims_);
      break;
    }
  }
  Entry sibling;
  sibling.mbr = new_node->ComputeMbr(dims_);
  sibling.child = std::move(new_node);
  parent->entries.push_back(std::move(sibling));
  if (parent->entries.size() > max_entries_) {
    // Split propagates upward; reinsertion is only attempted once per
    // insertion at the leaf level, so always split here.
    OverflowTreatment(parent, path, /*allow_reinsert=*/false);
  }
}

void RStarTree::ForEachContaining(
    const double* point, const std::function<void(int32_t)>& fn) const {
  if (size_ == 0) return;
  // Iterative DFS.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->level == 0) {
      for (const Entry& entry : node->entries) {
        if (entry.mbr.ContainsPoint(point, dims_)) fn(entry.id);
      }
      continue;
    }
    for (const Entry& entry : node->entries) {
      if (entry.mbr.ContainsPoint(point, dims_)) {
        stack.push_back(entry.child.get());
      }
    }
  }
}

void RStarTree::CollectIntersecting(const RStarRect& query,
                                    std::vector<int32_t>* out) const {
  if (size_ == 0) return;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& entry : node->entries) {
      if (!Intersects(entry.mbr, query, dims_)) continue;
      if (node->level == 0) {
        out->push_back(entry.id);
      } else {
        stack.push_back(entry.child.get());
      }
    }
  }
}

bool RStarTree::CheckInvariants() const {
  struct Walker {
    size_t dims;
    size_t max_entries;
    bool ok = true;

    void Walk(const Node* node, const RStarRect* expected_mbr) {
      if (node->entries.empty()) return;  // only legal for an empty root
      if (node->entries.size() > max_entries) ok = false;
      RStarRect mbr = node->ComputeMbr(dims);
      if (expected_mbr != nullptr) {
        for (size_t d = 0; d < dims; ++d) {
          if (mbr.lo[d] != expected_mbr->lo[d] ||
              mbr.hi[d] != expected_mbr->hi[d]) {
            ok = false;
          }
        }
      }
      for (const Entry& entry : node->entries) {
        if (node->level == 0) {
          if (entry.child != nullptr) ok = false;
        } else {
          if (entry.child == nullptr) {
            ok = false;
            continue;
          }
          if (entry.child->level != node->level - 1) ok = false;
          Walk(entry.child.get(), &entry.mbr);
        }
      }
    }
  };
  Walker walker{dims_, max_entries_};
  walker.Walk(root_.get(), nullptr);
  return walker.ok;
}

}  // namespace qarm
