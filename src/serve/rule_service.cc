#include "serve/rule_service.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace qarm {
namespace {

// Serving-side JSON string escaping (matches the report writer's rules).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

using Params = std::vector<std::pair<std::string, std::string>>;

// Last occurrence wins, matching common query-string semantics.
const std::string* FindParam(const Params& params, const std::string& key) {
  const std::string* found = nullptr;
  for (const auto& [k, v] : params) {
    if (k == key) found = &v;
  }
  return found;
}

Result<double> DoubleParam(const Params& params, const std::string& key,
                           double fallback) {
  const std::string* raw = FindParam(params, key);
  if (raw == nullptr) return fallback;
  Result<double> value = ParseDouble(*raw);
  if (!value.ok()) {
    return Status::InvalidArgument("bad " + key + ": '" + *raw + "'");
  }
  return *value;
}

Result<size_t> SizeParam(const Params& params, const std::string& key,
                         size_t fallback, size_t max_value) {
  const std::string* raw = FindParam(params, key);
  if (raw == nullptr) return fallback;
  Result<uint64_t> value = ParseUint64(*raw);
  if (!value.ok()) {
    return Status::InvalidArgument("bad " + key + ": '" + *raw + "'");
  }
  return static_cast<size_t>(std::min<uint64_t>(*value, max_value));
}

bool BoolParam(const Params& params, const std::string& key) {
  const std::string* raw = FindParam(params, key);
  return raw != nullptr && *raw != "0" && *raw != "false" && !raw->empty();
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":" + JsonString(message) + "}";
  return response;
}

HttpResponse JsonOk(std::string body) {
  HttpResponse response;
  response.body = std::move(body);
  return response;
}

std::string CacheStatsJson(const ResultCacheStats& stats) {
  return StrFormat(
      "{\"hits\":%llu,\"misses\":%llu,\"insertions\":%llu,"
      "\"evictions\":%llu,\"oversized_rejects\":%llu,\"entries\":%zu,"
      "\"bytes_used\":%zu,\"byte_budget\":%zu}",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.insertions),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.oversized_rejects),
      stats.entries, stats.bytes_used, stats.byte_budget);
}

}  // namespace

RuleService::RuleService(std::shared_ptr<const RuleCatalog> catalog,
                         const RuleServiceOptions& options)
    : catalog_(std::move(catalog)) {
  if (options.cache_bytes > 0) {
    cache_manager_ =
        std::make_unique<ResultCacheManager>(options.cache_bytes);
    // /match dominates the query mix, so it takes half the budget.
    match_cache_ =
        *cache_manager_->CreateCache("match", options.cache_bytes / 2);
    topk_cache_ =
        *cache_manager_->CreateCache("topk", options.cache_bytes / 4);
    rules_cache_ = *cache_manager_->CreateCache(
        "rules", options.cache_bytes - options.cache_bytes / 2 -
                     options.cache_bytes / 4);
  }
}

std::string RuleService::CanonicalKey(const HttpRequest& request) {
  Params sorted = request.params;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::string key = request.path;
  key += '?';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += '&';
    key += UrlEncode(sorted[i].first);
    key += '=';
    key += UrlEncode(sorted[i].second);
  }
  return key;
}

std::string RuleService::RuleToJson(uint32_t rule_id) const {
  const StoredRule& rule = catalog_->rules()[rule_id];
  const std::vector<MappedAttribute>& attrs = catalog_->attributes();
  auto side_json = [&](const std::vector<StoredItem>& side) {
    std::string out = "[";
    for (size_t i = 0; i < side.size(); ++i) {
      if (i > 0) out += ',';
      const StoredItem& item = side[i];
      const MappedAttribute& attr = attrs[static_cast<size_t>(item.attr)];
      out += "{\"attribute\":" + JsonString(attr.name);
      out += ",\"kind\":";
      out += attr.kind == AttributeKind::kQuantitative ? "\"quantitative\""
                                                       : "\"categorical\"";
      if (attr.kind == AttributeKind::kQuantitative) {
        Interval raw = attr.RawInterval(item.lo, item.hi);
        out += ",\"lo\":" + FormatDouble(raw.lo);
        out += ",\"hi\":" + FormatDouble(raw.hi);
      } else {
        out += ",\"value\":" + JsonString(attr.DecodeRange(item.lo, item.hi));
      }
      out += ",\"display\":" + JsonString(attr.DecodeRange(item.lo, item.hi));
      out += '}';
    }
    out += ']';
    return out;
  };
  std::string out = StrFormat("{\"id\":%u,\"antecedent\":", rule_id);
  out += side_json(rule.antecedent);
  out += ",\"consequent\":";
  out += side_json(rule.consequent);
  out += StrFormat(
      ",\"support\":%s,\"confidence\":%s,\"lift\":%s,\"count\":%llu,"
      "\"interesting\":%s}",
      FormatDouble(rule.support).c_str(),
      FormatDouble(rule.confidence).c_str(),
      FormatDouble(rule.lift).c_str(),
      static_cast<unsigned long long>(rule.count),
      rule.interesting ? "true" : "false");
  return out;
}

HttpResponse RuleService::Handle(const HttpRequest& request) {
  HttpResponse response;
  if (request.path == "/match") {
    match_requests_.fetch_add(1, std::memory_order_relaxed);
    if (match_cache_ != nullptr) {
      const std::string key = CanonicalKey(request);
      if (auto hit = match_cache_->Lookup(key)) {
        return JsonOk(std::move(*hit));
      }
      response = HandleMatch(request.params);
      if (response.status == 200) match_cache_->Insert(key, response.body);
    } else {
      response = HandleMatch(request.params);
    }
  } else if (request.path == "/topk") {
    topk_requests_.fetch_add(1, std::memory_order_relaxed);
    if (topk_cache_ != nullptr) {
      const std::string key = CanonicalKey(request);
      if (auto hit = topk_cache_->Lookup(key)) {
        return JsonOk(std::move(*hit));
      }
      response = HandleTopK(request.params);
      if (response.status == 200) topk_cache_->Insert(key, response.body);
    } else {
      response = HandleTopK(request.params);
    }
  } else if (request.path == "/rules") {
    rules_requests_.fetch_add(1, std::memory_order_relaxed);
    if (rules_cache_ != nullptr) {
      const std::string key = CanonicalKey(request);
      if (auto hit = rules_cache_->Lookup(key)) {
        return JsonOk(std::move(*hit));
      }
      response = HandleRules(request.params);
      if (response.status == 200) rules_cache_->Insert(key, response.body);
    } else {
      response = HandleRules(request.params);
    }
  } else if (request.path == "/statz") {
    statz_requests_.fetch_add(1, std::memory_order_relaxed);
    response = HandleStatz();
  } else if (request.path == "/healthz") {
    response = JsonOk("{\"status\":\"ok\"}");
  } else {
    response = ErrorResponse(404, "no such endpoint: " + request.path);
  }
  if (response.status != 200) {
    error_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

HttpResponse RuleService::HandleMatch(const Params& params) {
  MatchMode mode = MatchMode::kRule;
  if (const std::string* raw = FindParam(params, "mode")) {
    if (*raw == "antecedent") {
      mode = MatchMode::kAntecedent;
    } else if (*raw != "rule") {
      return ErrorResponse(400, "bad mode: '" + *raw +
                                    "' (expected rule|antecedent)");
    }
  }
  Result<size_t> limit = SizeParam(params, "limit", 100, 100000);
  if (!limit.ok()) {
    return ErrorResponse(400, std::string(limit.status().message()));
  }
  Params fields;
  for (const auto& [key, value] : params) {
    if (key == "mode" || key == "limit") continue;
    fields.emplace_back(key, value);
  }
  Result<std::vector<int32_t>> record = catalog_->ParseRecord(fields);
  if (!record.ok()) {
    return ErrorResponse(400, std::string(record.status().message()));
  }
  thread_local MatchScratch scratch;
  std::vector<uint32_t> matched;
  catalog_->MatchRules(*record, mode, &scratch, &matched);

  std::string body =
      StrFormat("{\"count\":%zu,\"rules\":[", matched.size());
  const size_t shown = std::min(matched.size(), *limit);
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) body += ',';
    body += RuleToJson(matched[i]);
  }
  body += "]}";
  return JsonOk(std::move(body));
}

HttpResponse RuleService::HandleTopK(const Params& params) {
  RankMeasure measure = RankMeasure::kConfidence;
  if (const std::string* raw = FindParam(params, "metric")) {
    Result<RankMeasure> parsed = ParseRankMeasure(*raw);
    if (!parsed.ok()) {
      return ErrorResponse(400, std::string(parsed.status().message()));
    }
    measure = *parsed;
  }
  Result<size_t> k = SizeParam(params, "k", 10, 100000);
  if (!k.ok()) return ErrorResponse(400, std::string(k.status().message()));
  int32_t attr = -1;
  if (const std::string* raw = FindParam(params, "attr")) {
    Result<int32_t> index = catalog_->AttributeIndex(*raw);
    if (!index.ok()) {
      return ErrorResponse(404, std::string(index.status().message()));
    }
    attr = *index;
  }
  const std::vector<uint32_t> top =
      catalog_->TopK(measure, attr, *k, BoolParam(params, "interesting"));
  std::string body = StrFormat("{\"metric\":\"%s\",\"count\":%zu,\"rules\":[",
                               RankMeasureName(measure), top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) body += ',';
    body += RuleToJson(top[i]);
  }
  body += "]}";
  return JsonOk(std::move(body));
}

HttpResponse RuleService::HandleRules(const Params& params) {
  BrowseFilter filter;
  Result<double> min_conf = DoubleParam(params, "min_conf", 0.0);
  Result<double> min_sup = DoubleParam(params, "min_sup", 0.0);
  Result<double> min_lift = DoubleParam(params, "min_lift", 0.0);
  Result<size_t> offset = SizeParam(params, "offset", 0, SIZE_MAX / 2);
  Result<size_t> limit = SizeParam(params, "limit", 50, 100000);
  for (const Status& status :
       {min_conf.status(), min_sup.status(), min_lift.status(),
        offset.status(), limit.status()}) {
    if (!status.ok()) return ErrorResponse(400, std::string(status.message()));
  }
  filter.min_confidence = *min_conf;
  filter.min_support = *min_sup;
  filter.min_lift = *min_lift;
  filter.interesting_only = BoolParam(params, "interesting");
  if (const std::string* raw = FindParam(params, "attr")) {
    Result<int32_t> index = catalog_->AttributeIndex(*raw);
    if (!index.ok()) {
      return ErrorResponse(404, std::string(index.status().message()));
    }
    filter.attr = *index;
  }
  size_t total = 0;
  const std::vector<uint32_t> page =
      catalog_->Browse(filter, *offset, *limit, &total);
  std::string body = StrFormat(
      "{\"total\":%zu,\"offset\":%zu,\"limit\":%zu,\"rules\":[", total,
      *offset, *limit);
  for (size_t i = 0; i < page.size(); ++i) {
    if (i > 0) body += ',';
    body += RuleToJson(page[i]);
  }
  body += "]}";
  return JsonOk(std::move(body));
}

HttpResponse RuleService::HandleStatz() {
  const double uptime = uptime_.ElapsedSeconds();
  const uint64_t match = match_requests_.load(std::memory_order_relaxed);
  const uint64_t topk = topk_requests_.load(std::memory_order_relaxed);
  const uint64_t rules = rules_requests_.load(std::memory_order_relaxed);
  const uint64_t statz = statz_requests_.load(std::memory_order_relaxed);
  const uint64_t total = match + topk + rules + statz;
  const RuleCatalogStats& cat = catalog_->stats();

  std::string body = StrFormat(
      "{\"uptime_seconds\":%s,\"qps\":%s,"
      "\"requests\":{\"match\":%llu,\"topk\":%llu,\"rules\":%llu,"
      "\"statz\":%llu,\"total\":%llu,\"errors\":%llu}",
      FormatDouble(uptime, 3).c_str(),
      FormatDouble(uptime > 0 ? static_cast<double>(total) / uptime : 0.0, 3)
          .c_str(),
      static_cast<unsigned long long>(match),
      static_cast<unsigned long long>(topk),
      static_cast<unsigned long long>(rules),
      static_cast<unsigned long long>(statz),
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(
          error_responses_.load(std::memory_order_relaxed)));
  body += StrFormat(
      ",\"catalog\":{\"num_rules\":%zu,\"num_attributes\":%zu,"
      "\"num_records\":%llu,\"interval_entries\":%zu,\"grid_cells\":%zu,"
      "\"grid_attributes\":%zu,\"scan_attributes\":%zu,"
      "\"index_bytes\":%zu,\"build_seconds\":%s}",
      cat.num_rules, cat.num_attributes,
      static_cast<unsigned long long>(catalog_->num_records()),
      cat.interval_entries, cat.grid_cells, cat.grid_attributes,
      cat.scan_attributes, cat.index_bytes,
      FormatDouble(cat.build_seconds, 6).c_str());
  body += ",\"cache\":{\"enabled\":";
  if (cache_manager_ == nullptr) {
    body += "false}";
  } else {
    body += "true,\"total\":" + CacheStatsJson(cache_manager_->TotalStats());
    for (const auto& [name, stats] : cache_manager_->AllStats()) {
      body += ",\"" + name + "\":" + CacheStatsJson(stats);
    }
    body += '}';
  }
  body += '}';
  return JsonOk(std::move(body));
}

}  // namespace qarm
