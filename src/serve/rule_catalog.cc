#include "serve/rule_catalog.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "partition/mapped_table.h"

namespace qarm {
namespace {

inline uint32_t PackEntry(uint32_t rule_id, bool is_ante) {
  return (rule_id << 1) | (is_ante ? 1u : 0u);
}
inline uint32_t EntryRule(uint32_t entry) { return entry >> 1; }
inline bool EntryIsAnte(uint32_t entry) { return (entry & 1u) != 0; }

}  // namespace

Result<RankMeasure> ParseRankMeasure(const std::string& name) {
  if (name == "confidence") return RankMeasure::kConfidence;
  if (name == "support") return RankMeasure::kSupport;
  if (name == "lift") return RankMeasure::kLift;
  return Status::InvalidArgument("unknown measure: " + name +
                                 " (expected confidence|support|lift)");
}

const char* RankMeasureName(RankMeasure measure) {
  switch (measure) {
    case RankMeasure::kConfidence:
      return "confidence";
    case RankMeasure::kSupport:
      return "support";
    case RankMeasure::kLift:
      return "lift";
  }
  return "?";
}

Result<std::shared_ptr<const RuleCatalog>> RuleCatalog::Load(
    const std::string& path, const RuleCatalogOptions& options) {
  QARM_ASSIGN_OR_RETURN(StoredRuleSet set, ReadRuleSet(path));
  return Build(std::move(set), options);
}

Result<std::shared_ptr<const RuleCatalog>> RuleCatalog::Build(
    StoredRuleSet set, const RuleCatalogOptions& options) {
  auto catalog = std::shared_ptr<RuleCatalog>(new RuleCatalog());
  catalog->set_ = std::move(set);
  catalog->BuildIndexes(options);
  return std::shared_ptr<const RuleCatalog>(std::move(catalog));
}

void RuleCatalog::BuildIndexes(const RuleCatalogOptions& options) {
  Timer timer;
  const std::vector<StoredRule>& rules = set_.rules;
  const std::vector<MappedAttribute>& attrs = set_.attributes;
  const size_t num_attrs = attrs.size();

  attr_by_name_.reserve(num_attrs);
  label_ids_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    attr_by_name_.emplace(attrs[a].name, static_cast<int32_t>(a));
    for (size_t id = 0; id < attrs[a].labels.size(); ++id) {
      label_ids_[a].emplace(attrs[a].labels[id], static_cast<int32_t>(id));
    }
  }

  // --- Interval index ------------------------------------------------------
  // Pass 1 over the rules: per attribute, how many (rule, side) entries and
  // how many grid cells (sum of item widths) they would cost.
  std::vector<size_t> attr_entries(num_attrs, 0);
  std::vector<size_t> attr_cells(num_attrs, 0);
  auto tally = [&](const std::vector<StoredItem>& side) {
    for (const StoredItem& item : side) {
      const size_t a = static_cast<size_t>(item.attr);
      ++attr_entries[a];
      attr_cells[a] +=
          static_cast<size_t>(item.hi) - static_cast<size_t>(item.lo) + 1;
    }
  };
  for (const StoredRule& rule : rules) {
    tally(rule.antecedent);
    tally(rule.consequent);
  }

  interval_index_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    AttrIndex& index = interval_index_[a];
    index.grid = attr_cells[a] <= options.max_grid_cells_per_attr;
    stats_.interval_entries += attr_entries[a];
    if (index.grid) {
      ++stats_.grid_attributes;
      stats_.grid_cells += attr_cells[a];
      // CSR counting pass: offsets[v + 1] accumulates covering items.
      index.offsets.assign(attrs[a].domain_size() + 1, 0);
    } else {
      ++stats_.scan_attributes;
      index.entries.reserve(attr_entries[a]);
      index.los.reserve(attr_entries[a]);
      index.his.reserve(attr_entries[a]);
    }
  }

  auto count_item = [&](const StoredItem& item) {
    AttrIndex& index = interval_index_[static_cast<size_t>(item.attr)];
    if (!index.grid) return;
    for (int32_t v = item.lo; v <= item.hi; ++v) {
      ++index.offsets[static_cast<size_t>(v) + 1];
    }
  };
  for (const StoredRule& rule : rules) {
    for (const StoredItem& item : rule.antecedent) count_item(item);
    for (const StoredItem& item : rule.consequent) count_item(item);
  }
  // Counts were staged at offsets[v + 1], so an inclusive scan turns the
  // array into CSR starts: offsets[v] = sum of counts of values < v.
  for (AttrIndex& index : interval_index_) {
    if (!index.grid) continue;
    size_t total = 0;
    for (uint32_t& offset : index.offsets) {
      total += offset;
      offset = static_cast<uint32_t>(total);
    }
    index.entries.resize(total);
  }
  // Placement pass. Rules are visited in id order, so every grid cell ends
  // up sorted by rule id without an explicit sort; `cursor` tracks the next
  // free slot per cell.
  std::vector<std::vector<uint32_t>> cursors(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    if (interval_index_[a].grid) {
      cursors[a].assign(interval_index_[a].offsets.begin(),
                        interval_index_[a].offsets.end() - 1);
    }
  }
  auto place_item = [&](const StoredItem& item, uint32_t rule_id,
                        bool is_ante) {
    const size_t a = static_cast<size_t>(item.attr);
    AttrIndex& index = interval_index_[a];
    const uint32_t packed = PackEntry(rule_id, is_ante);
    if (index.grid) {
      for (int32_t v = item.lo; v <= item.hi; ++v) {
        index.entries[cursors[a][static_cast<size_t>(v)]++] = packed;
      }
    } else {
      index.entries.push_back(packed);
      index.los.push_back(item.lo);
      index.his.push_back(item.hi);
    }
  };
  for (size_t r = 0; r < rules.size(); ++r) {
    const uint32_t rule_id = static_cast<uint32_t>(r);
    for (const StoredItem& item : rules[r].antecedent) {
      place_item(item, rule_id, /*is_ante=*/true);
    }
    for (const StoredItem& item : rules[r].consequent) {
      place_item(item, rule_id, /*is_ante=*/false);
    }
  }
  // Fallback attributes scan entries in lo order (stable, so equal-lo runs
  // stay in rule order and stabs stay deterministic).
  for (AttrIndex& index : interval_index_) {
    if (index.grid) continue;
    std::vector<uint32_t> order(index.entries.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<uint32_t>(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t x, uint32_t y) {
                       return index.los[x] < index.los[y];
                     });
    AttrIndex sorted;
    sorted.grid = false;
    sorted.entries.reserve(order.size());
    sorted.los.reserve(order.size());
    sorted.his.reserve(order.size());
    for (uint32_t i : order) {
      sorted.entries.push_back(index.entries[i]);
      sorted.los.push_back(index.los[i]);
      sorted.his.push_back(index.his[i]);
    }
    index = std::move(sorted);
  }

  // --- Top-K sorted views --------------------------------------------------
  std::vector<std::vector<uint32_t>> incidence(num_attrs);
  for (size_t r = 0; r < rules.size(); ++r) {
    for (const StoredItem& item : rules[r].antecedent) {
      incidence[static_cast<size_t>(item.attr)].push_back(
          static_cast<uint32_t>(r));
    }
    for (const StoredItem& item : rules[r].consequent) {
      incidence[static_cast<size_t>(item.attr)].push_back(
          static_cast<uint32_t>(r));
    }
  }
  for (size_t m = 0; m < kNumRankMeasures; ++m) {
    const RankMeasure measure = static_cast<RankMeasure>(m);
    auto better = [&](uint32_t x, uint32_t y) {
      const double mx = Measure(x, measure);
      const double my = Measure(y, measure);
      if (mx != my) return mx > my;
      return x < y;
    };
    global_order_[m].resize(rules.size());
    for (size_t r = 0; r < rules.size(); ++r) {
      global_order_[m][r] = static_cast<uint32_t>(r);
    }
    std::sort(global_order_[m].begin(), global_order_[m].end(), better);
    attr_order_[m].resize(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      attr_order_[m][a] = incidence[a];
      std::sort(attr_order_[m][a].begin(), attr_order_[m][a].end(), better);
    }
  }

  // --- Size accounting -----------------------------------------------------
  stats_.num_rules = rules.size();
  stats_.num_attributes = num_attrs;
  size_t bytes = 0;
  for (const AttrIndex& index : interval_index_) {
    bytes += index.offsets.size() * sizeof(uint32_t);
    bytes += index.entries.size() * sizeof(uint32_t);
    bytes += (index.los.size() + index.his.size()) * sizeof(int32_t);
  }
  for (size_t m = 0; m < kNumRankMeasures; ++m) {
    bytes += global_order_[m].size() * sizeof(uint32_t);
    for (const std::vector<uint32_t>& view : attr_order_[m]) {
      bytes += view.size() * sizeof(uint32_t);
    }
  }
  stats_.index_bytes = bytes;
  stats_.build_seconds = timer.ElapsedSeconds();
}

double RuleCatalog::Measure(uint32_t rule_id, RankMeasure measure) const {
  const StoredRule& rule = set_.rules[rule_id];
  switch (measure) {
    case RankMeasure::kConfidence:
      return rule.confidence;
    case RankMeasure::kSupport:
      return rule.support;
    case RankMeasure::kLift:
      return rule.lift;
  }
  return 0.0;
}

Result<int32_t> RuleCatalog::AttributeIndex(const std::string& name) const {
  auto it = attr_by_name_.find(name);
  if (it == attr_by_name_.end()) {
    return Status::NotFound("unknown attribute: " + name);
  }
  return it->second;
}

Result<int32_t> RuleCatalog::MapValue(int32_t attr,
                                      const std::string& raw) const {
  const MappedAttribute& meta = set_.attributes[static_cast<size_t>(attr)];
  if (meta.kind == AttributeKind::kCategorical) {
    auto it = label_ids_[static_cast<size_t>(attr)].find(raw);
    if (it == label_ids_[static_cast<size_t>(attr)].end()) {
      return kMissingValue;  // no item over this attribute can match
    }
    return it->second;
  }
  Result<double> value = ParseDouble(raw);
  if (!value.ok()) {
    return Status::InvalidArgument("attribute " + meta.name +
                                   " is quantitative; bad value '" + raw +
                                   "'");
  }
  // Base intervals are ordered by value; find the first whose hi admits
  // the value and check containment (gaps between intervals map to
  // missing, same as an out-of-range value).
  const std::vector<Interval>& intervals = meta.intervals;
  auto it = std::lower_bound(
      intervals.begin(), intervals.end(), *value,
      [](const Interval& interval, double v) { return interval.hi < v; });
  if (it == intervals.end() || !it->Contains(*value)) return kMissingValue;
  return static_cast<int32_t>(it - intervals.begin());
}

Result<std::vector<int32_t>> RuleCatalog::ParseRecord(
    const std::vector<std::pair<std::string, std::string>>& fields) const {
  std::vector<int32_t> record(set_.attributes.size(), kMissingValue);
  for (const auto& [name, raw] : fields) {
    QARM_ASSIGN_OR_RETURN(int32_t attr, AttributeIndex(name));
    QARM_ASSIGN_OR_RETURN(record[static_cast<size_t>(attr)],
                          MapValue(attr, raw));
  }
  return record;
}

void RuleCatalog::StabInto(int32_t attr, int32_t value,
                           MatchScratch* scratch) const {
  const AttrIndex& index = interval_index_[static_cast<size_t>(attr)];
  auto bump = [&](uint32_t entry) {
    const uint32_t rule_id = EntryRule(entry);
    if (scratch->total[rule_id] == 0) scratch->touched.push_back(rule_id);
    ++scratch->total[rule_id];
    if (EntryIsAnte(entry)) ++scratch->ante[rule_id];
  };
  if (index.grid) {
    const size_t v = static_cast<size_t>(value);
    for (size_t i = index.offsets[v]; i < index.offsets[v + 1]; ++i) {
      bump(index.entries[i]);
    }
    return;
  }
  // Fallback: entries sorted by lo; stop at the first lo beyond the value.
  for (size_t i = 0; i < index.entries.size() && index.los[i] <= value;
       ++i) {
    if (index.his[i] >= value) bump(index.entries[i]);
  }
}

void RuleCatalog::MatchRules(const std::vector<int32_t>& record,
                             MatchMode mode, MatchScratch* scratch,
                             std::vector<uint32_t>* out) const {
  const size_t num_rules = set_.rules.size();
  if (scratch->total.size() < num_rules) {
    scratch->total.resize(num_rules, 0);
    scratch->ante.resize(num_rules, 0);
  }
  scratch->touched.clear();
  for (size_t a = 0; a < record.size() && a < set_.attributes.size(); ++a) {
    const int32_t value = record[a];
    if (value == kMissingValue) continue;
    if (value < 0 ||
        static_cast<size_t>(value) >= set_.attributes[a].domain_size()) {
      continue;  // outside the mapped domain: supports no item
    }
    StabInto(static_cast<int32_t>(a), value, scratch);
  }
  for (uint32_t rule_id : scratch->touched) {
    const StoredRule& rule = set_.rules[rule_id];
    const bool matched =
        mode == MatchMode::kRule
            ? scratch->total[rule_id] == rule.num_items()
            : scratch->ante[rule_id] == rule.antecedent.size();
    if (matched) out->push_back(rule_id);
    scratch->total[rule_id] = 0;
    scratch->ante[rule_id] = 0;
  }
  std::sort(out->begin(), out->end());
}

std::vector<uint32_t> RuleCatalog::TopK(RankMeasure measure, int32_t attr,
                                        size_t k,
                                        bool interesting_only) const {
  const size_t m = static_cast<size_t>(measure);
  const std::vector<uint32_t>& view =
      attr < 0 ? global_order_[m]
               : attr_order_[m][static_cast<size_t>(attr)];
  std::vector<uint32_t> out;
  out.reserve(std::min(k, view.size()));
  for (uint32_t rule_id : view) {
    if (out.size() >= k) break;
    if (interesting_only && !set_.rules[rule_id].interesting) continue;
    out.push_back(rule_id);
  }
  return out;
}

bool RuleCatalog::RuleMentions(uint32_t rule_id, int32_t attr) const {
  const StoredRule& rule = set_.rules[rule_id];
  for (const StoredItem& item : rule.antecedent) {
    if (item.attr == attr) return true;
  }
  for (const StoredItem& item : rule.consequent) {
    if (item.attr == attr) return true;
  }
  return false;
}

std::vector<uint32_t> RuleCatalog::Browse(const BrowseFilter& filter,
                                          size_t offset, size_t limit,
                                          size_t* total) const {
  std::vector<uint32_t> out;
  size_t seen = 0;
  for (size_t r = 0; r < set_.rules.size(); ++r) {
    const StoredRule& rule = set_.rules[r];
    if (rule.confidence < filter.min_confidence) continue;
    if (rule.support < filter.min_support) continue;
    if (rule.lift < filter.min_lift) continue;
    if (filter.interesting_only && !rule.interesting) continue;
    if (filter.attr >= 0 &&
        !RuleMentions(static_cast<uint32_t>(r), filter.attr)) {
      continue;
    }
    if (seen >= offset && out.size() < limit) {
      out.push_back(static_cast<uint32_t>(r));
    }
    ++seen;
  }
  if (total != nullptr) *total = seen;
  return out;
}

}  // namespace qarm
