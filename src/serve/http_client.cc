#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace qarm {
namespace {

// Case-insensitive "does `line` start with `prefix`".
bool StartsWithIgnoreCase(const std::string& line, const char* prefix) {
  const size_t n = std::strlen(prefix);
  if (line.size() < n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::tolower(static_cast<unsigned char>(line[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HttpClient>> HttpClient::Connect(
    const std::string& host, uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + error);
  }
  auto client = std::unique_ptr<HttpClient>(new HttpClient());
  client->fd_ = fd;
  return client;
}

HttpClient::~HttpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<HttpResponse> HttpClient::Get(const std::string& target) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: qarm\r\nConnection: "
                              "keep-alive\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  // Read the response head.
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IOError(n == 0 ? "connection closed mid-response"
                                    : std::string("recv: ") +
                                          std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  HttpResponse response;
  // Status line: HTTP/1.1 NNN reason.
  const size_t sp = head.find(' ');
  if (sp == std::string::npos || head.size() < sp + 4) {
    return Status::IOError("malformed status line: " + head.substr(0, 32));
  }
  Result<uint64_t> code = ParseUint64(head.substr(sp + 1, 3));
  if (!code.ok()) {
    return Status::IOError("malformed status code in: " + head.substr(0, 32));
  }
  response.status = static_cast<int>(*code);

  size_t content_length = std::string::npos;
  for (const std::string& line : Split(head, '\n')) {
    std::string trimmed(StripWhitespace(line));
    if (StartsWithIgnoreCase(trimmed, "content-length:")) {
      Result<uint64_t> length = ParseUint64(
          StripWhitespace(trimmed.substr(std::strlen("content-length:"))));
      if (!length.ok()) return Status::IOError("bad Content-Length");
      content_length = static_cast<size_t>(*length);
    } else if (StartsWithIgnoreCase(trimmed, "content-type:")) {
      response.content_type = std::string(StripWhitespace(
          trimmed.substr(std::strlen("content-type:"))));
    }
  }
  if (content_length == std::string::npos) {
    return Status::IOError("response without Content-Length");
  }
  while (buffer_.size() < content_length) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return Status::IOError(n == 0 ? "connection closed mid-body"
                                    : std::string("recv: ") +
                                          std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return response;
}

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& target, int timeout_ms) {
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<HttpClient> client,
                        HttpClient::Connect(host, port, timeout_ms));
  return client->Get(target);
}

}  // namespace qarm
