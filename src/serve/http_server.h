// A thin hand-rolled HTTP/1.1 front end over POSIX sockets — no external
// dependencies. Scope is exactly what rule serving needs: GET requests,
// query strings, keep-alive connections, JSON responses. N threads share
// one listening socket and each runs an accept loop; a per-connection
// receive timeout plus an atomic stop flag makes shutdown prompt and
// clean (Stop() is safe from signal-adjacent contexts and idempotent).
//
// The server is transport only: every request is handed to a
// caller-provided handler (RuleService in production, lambdas in tests).
#ifndef QARM_SERVE_HTTP_SERVER_H_
#define QARM_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qarm {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/match" — target up to '?'
  // Query parameters in target order, URL-decoded ('+' and %XX).
  std::vector<std::pair<std::string, std::string>> params;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Percent-decodes `text` ('+' becomes space); malformed escapes are kept
// verbatim. Exposed for the query canonicalizer and tests.
std::string UrlDecode(const std::string& text);

// Percent-encodes everything outside [A-Za-z0-9._~-].
std::string UrlEncode(const std::string& text);

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; bound port via HttpServer::port()
  size_t num_threads = 4;
  size_t max_request_bytes = 64 * 1024;
  int recv_timeout_ms = 5000;  // per-connection read timeout (keep-alive)
  // Per-send() timeout (SO_SNDTIMEO). A timed-out send means the reader is
  // slow, not dead: SendAll keeps retrying from the unsent tail until
  // send_deadline_ms of wall clock has elapsed for the response, then the
  // connection is closed without reuse.
  int send_timeout_ms = 1000;
  int send_deadline_ms = 15000;
  // SO_SNDBUF for accepted sockets; 0 keeps the OS default. Tests shrink
  // this to force send() to block on a slow reader.
  int send_buffer_bytes = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Binds, listens, and starts the accept threads. The handler runs on
  // server threads and must be thread-safe.
  static Result<std::unique_ptr<HttpServer>> Start(
      const HttpServerOptions& options, Handler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // The bound port (resolves port 0).
  uint16_t port() const { return port_; }

  // Stops accepting, drains the threads, closes the socket. Idempotent.
  void Stop();

  uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  HttpServer() = default;

  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> connections_{0};
  std::vector<std::thread> threads_;
};

}  // namespace qarm

#endif  // QARM_SERVE_HTTP_SERVER_H_
