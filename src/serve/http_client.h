// Minimal blocking HTTP/1.1 client over POSIX sockets — the counterpart
// of http_server.h for the load generator, the CLI smoke helper, and the
// end-to-end tests. Supports exactly what those need: GET over a
// keep-alive connection, Content-Length responses, per-call timeouts.
#ifndef QARM_SERVE_HTTP_CLIENT_H_
#define QARM_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "serve/http_server.h"

namespace qarm {

// One keep-alive connection. Not thread-safe; benchmark clients own one
// connection per thread.
class HttpClient {
 public:
  static Result<std::unique_ptr<HttpClient>> Connect(
      const std::string& host, uint16_t port, int timeout_ms = 5000);

  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Issues `GET target` and reads the full response. IOError when the
  // connection broke (callers reconnect); the HTTP status code is in the
  // response, not the Status.
  Result<HttpResponse> Get(const std::string& target);

 private:
  HttpClient() = default;
  int fd_ = -1;
  std::string buffer_;  // bytes past the previous response
};

// One-shot convenience: connect, GET, close.
Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& target,
                             int timeout_ms = 5000);

}  // namespace qarm

#endif  // QARM_SERVE_HTTP_CLIENT_H_
