#include "serve/result_cache.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"

namespace qarm {

ResultCache::ResultCache(size_t byte_budget, size_t num_shards)
    : byte_budget_(byte_budget),
      shard_budget_(byte_budget / std::max<size_t>(num_shards, 1)) {
  shards_.reserve(std::max<size_t>(num_shards, 1));
  for (size_t i = 0; i < std::max<size_t>(num_shards, 1); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ResultCache::EntryCost(const std::string& key,
                              const std::string& value) {
  // Strings plus an allowance for the hash-table node and Entry struct.
  return key.size() + value.size() + 96;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  uint64_t h = SplitMix64(std::hash<std::string>{}(key));
  return *shards_[h % shards_.size()];
}

std::optional<std::string> ResultCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  ++it->second.frequency;
  return it->second.value;
}

void ResultCache::Insert(const std::string& key, const std::string& value) {
  const size_t cost = EntryCost(key, value);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (cost > shard_budget_) {
    ++shard.oversized_rejects;
    return;
  }
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= EntryCost(key, it->second.value);
    shard.entries.erase(it);
  }
  while (shard.bytes + cost > shard_budget_ && !shard.entries.empty()) {
    auto victim = shard.entries.begin();
    for (auto cur = shard.entries.begin(); cur != shard.entries.end();
         ++cur) {
      if (cur->second.frequency < victim->second.frequency) victim = cur;
    }
    shard.bytes -= EntryCost(victim->first, victim->second.value);
    shard.entries.erase(victim);
    ++shard.evictions;
  }
  shard.entries.emplace(key, Entry{value, 1});
  shard.bytes += cost;
  ++shard.insertions;
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->bytes = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.byte_budget = byte_budget_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.oversized_rejects += shard->oversized_rejects;
    stats.entries += shard->entries.size();
    stats.bytes_used += shard->bytes;
  }
  return stats;
}

ResultCacheManager::ResultCacheManager(size_t total_byte_budget)
    : total_byte_budget_(total_byte_budget) {}

Result<std::shared_ptr<ResultCache>> ResultCacheManager::CreateCache(
    const std::string& name, size_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, cache] : caches_) {
    if (existing == name) {
      return Status::InvalidArgument("cache already exists: " + name);
    }
  }
  if (allocated_ + byte_budget > total_byte_budget_) {
    return Status::InvalidArgument(
        "cache budget exhausted: " + name + " wants " +
        std::to_string(byte_budget) + " bytes, " +
        std::to_string(total_byte_budget_ - allocated_) + " remain");
  }
  allocated_ += byte_budget;
  auto cache = std::make_shared<ResultCache>(byte_budget);
  caches_.emplace_back(name, cache);
  return cache;
}

std::vector<std::pair<std::string, ResultCacheStats>>
ResultCacheManager::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, ResultCacheStats>> out;
  out.reserve(caches_.size());
  for (const auto& [name, cache] : caches_) {
    out.emplace_back(name, cache->Stats());
  }
  return out;
}

ResultCacheStats ResultCacheManager::TotalStats() const {
  ResultCacheStats total;
  for (const auto& [name, stats] : AllStats()) {
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.insertions += stats.insertions;
    total.evictions += stats.evictions;
    total.oversized_rejects += stats.oversized_rejects;
    total.entries += stats.entries;
    total.bytes_used += stats.bytes_used;
    total.byte_budget += stats.byte_budget;
  }
  return total;
}

}  // namespace qarm
