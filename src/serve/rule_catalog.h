// RuleCatalog — the immutable, shared, index-backed view of a mined rule
// set that the serving engine answers queries from. Built once at load
// time from a QRS file (or an in-memory StoredRuleSet); every structure is
// read-only afterwards, so any number of server threads query it without
// locks.
//
// Three query shapes, three structures:
//
//   * "Which rules match this record?" — a per-attribute interval index
//     over the rules' <attr, lo, hi> items. The default structure is a
//     sorted-endpoint grid in CSR form: for each mapped value v of the
//     attribute, a contiguous run of (rule, side) entries whose item
//     covers v, so a stab is one offset lookup. Mapped domains are small
//     (they are the paper's base intervals / category ids), which makes
//     the grid's sum-of-widths memory practical; an attribute whose grid
//     would exceed the build budget falls back to a sorted-by-lo list
//     scanned with the same semantics (the oracle the tests compare
//     against).
//
//   * "Top-K rules by <measure> (for attribute X)" — sorted views, built
//     at load time: one global rule ordering per measure, plus one per
//     (attribute, measure) over the rules that mention the attribute.
//     Orders are total (measure desc, rule id asc), so results are
//     deterministic.
//
//   * Paged browsing — rules in id order behind filter predicates
//     (min confidence/support/lift, attribute, interesting-only).
//
// Matching follows the paper's record model: a record holds at most one
// value per attribute, and a record that lacks an attribute supports no
// item over it (so a rule mentioning that attribute cannot match).
#ifndef QARM_SERVE_RULE_CATALOG_H_
#define QARM_SERVE_RULE_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/rules_format.h"

namespace qarm {

// The measures a rule can be ranked by.
enum class RankMeasure { kConfidence = 0, kSupport = 1, kLift = 2 };
inline constexpr size_t kNumRankMeasures = 3;

// "confidence" | "support" | "lift" (as used by /topk?metric=...).
Result<RankMeasure> ParseRankMeasure(const std::string& name);
const char* RankMeasureName(RankMeasure measure);

// What "match" means for a rule and a record.
enum class MatchMode {
  kRule,        // the record supports antecedent ∪ consequent
  kAntecedent,  // the record supports the antecedent (the rule "fires")
};

// Reusable per-thread scratch for MatchRules. Between calls every counter
// is zero (MatchRules restores the invariant before returning), so one
// scratch serves catalogs of any size.
struct MatchScratch {
  std::vector<uint16_t> total;  // matched items per touched rule
  std::vector<uint16_t> ante;   // matched antecedent items per touched rule
  std::vector<uint32_t> touched;
};

// Browse filter predicates; a rule must pass all of them.
struct BrowseFilter {
  double min_confidence = 0.0;
  double min_support = 0.0;
  double min_lift = 0.0;
  int32_t attr = -1;  // -1 = any; otherwise the rule must mention it
  bool interesting_only = false;
};

// Build/load knobs.
struct RuleCatalogOptions {
  // Per-attribute cap on grid cells (sum of item widths). Above it the
  // attribute's index falls back to the sorted-scan list. The default
  // admits every realistic rule set; tests shrink it to force the
  // fallback.
  size_t max_grid_cells_per_attr = size_t{1} << 22;
};

// Sizes and timings of the built indexes, surfaced in /statz.
struct RuleCatalogStats {
  size_t num_rules = 0;
  size_t num_attributes = 0;
  size_t interval_entries = 0;   // (rule, side) entries across attributes
  size_t grid_cells = 0;         // CSR cells across grid-indexed attributes
  size_t grid_attributes = 0;    // attributes using the grid
  size_t scan_attributes = 0;    // attributes on the sorted-scan fallback
  size_t index_bytes = 0;        // interval index + top-K views
  double build_seconds = 0.0;
};

class RuleCatalog {
 public:
  // Reads, validates, and indexes the QRS file at `path`.
  static Result<std::shared_ptr<const RuleCatalog>> Load(
      const std::string& path, const RuleCatalogOptions& options = {});

  // Indexes an in-memory rule set (takes ownership).
  static Result<std::shared_ptr<const RuleCatalog>> Build(
      StoredRuleSet set, const RuleCatalogOptions& options = {});

  const std::vector<StoredRule>& rules() const { return set_.rules; }
  const std::vector<MappedAttribute>& attributes() const {
    return set_.attributes;
  }
  uint64_t num_records() const { return set_.num_records; }
  double minsup() const { return set_.minsup; }
  double minconf() const { return set_.minconf; }
  const RuleCatalogStats& stats() const { return stats_; }

  // Attribute index by name; NotFound for unknown names.
  Result<int32_t> AttributeIndex(const std::string& name) const;

  // Maps one raw field value ("25", "Yes") to the attribute's mapped id.
  // A numeric value outside every base interval and a label the attribute
  // does not have both map to kMissingValue — such a record supports no
  // item over the attribute, exactly like a record that lacks it.
  // InvalidArgument only for type errors (non-numeric text for a
  // quantitative attribute).
  Result<int32_t> MapValue(int32_t attr, const std::string& raw) const;

  // A query record: one mapped value per attribute, kMissingValue where
  // the record lacks the attribute. Built from (name, raw value) fields.
  Result<std::vector<int32_t>> ParseRecord(
      const std::vector<std::pair<std::string, std::string>>& fields) const;

  // Appends to `out` the ids of every rule the record matches under
  // `mode`, in ascending id order. `record` must hold one mapped value
  // per attribute.
  void MatchRules(const std::vector<int32_t>& record, MatchMode mode,
                  MatchScratch* scratch, std::vector<uint32_t>* out) const;

  // The first `k` rule ids of the `measure` ranking — global when `attr`
  // is -1, else among rules mentioning the attribute — optionally
  // restricted to interesting rules.
  std::vector<uint32_t> TopK(RankMeasure measure, int32_t attr, size_t k,
                             bool interesting_only) const;

  // Rules passing `filter`, in id order, skipping `offset` of them and
  // returning at most `limit`. `total`, when non-null, receives the
  // filtered count regardless of the page.
  std::vector<uint32_t> Browse(const BrowseFilter& filter, size_t offset,
                               size_t limit, size_t* total) const;

  // Rank value of one rule under one measure.
  double Measure(uint32_t rule_id, RankMeasure measure) const;

 private:
  RuleCatalog() = default;

  // Interval index of one attribute. Entries pack (rule_id << 1 | is_ante)
  // into a u32; rule ids are bounded to 31 bits by the QRS reader.
  struct AttrIndex {
    bool grid = false;
    // Grid: CSR over mapped values; entries for value v are
    // entries[offsets[v] .. offsets[v + 1]).
    std::vector<uint32_t> offsets;
    // Grid: covering entries per value. Fallback: all entries sorted by
    // item lo (parallel to los/his).
    std::vector<uint32_t> entries;
    std::vector<int32_t> los;  // fallback only
    std::vector<int32_t> his;  // fallback only
  };

  void BuildIndexes(const RuleCatalogOptions& options);
  void StabInto(int32_t attr, int32_t value, MatchScratch* scratch) const;
  bool RuleMentions(uint32_t rule_id, int32_t attr) const;

  StoredRuleSet set_;
  RuleCatalogStats stats_;

  std::unordered_map<std::string, int32_t> attr_by_name_;
  // Per categorical attribute: label -> mapped id (empty for quantitative).
  std::vector<std::unordered_map<std::string, int32_t>> label_ids_;
  std::vector<AttrIndex> interval_index_;
  // Sorted views: global_order_[measure] ranks every rule;
  // attr_order_[measure][attr] ranks the rules mentioning `attr`.
  std::vector<uint32_t> global_order_[kNumRankMeasures];
  std::vector<std::vector<uint32_t>> attr_order_[kNumRankMeasures];
};

}  // namespace qarm

#endif  // QARM_SERVE_RULE_CATALOG_H_
