#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/string_util.h"

namespace qarm {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 413:
      return "Payload Too Large";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

// Sends the whole buffer; false on a broken connection or a reader that
// stays stalled past `deadline_ms`. EAGAIN/EWOULDBLOCK here means the
// SO_SNDTIMEO send timeout fired while the socket buffer was full — the
// peer is slow, not gone — so the send is retried (the kernel resumes from
// the unsent tail) until the wall-clock deadline expires. Treating the
// first timeout as fatal used to abandon a half-written keep-alive
// response mid-body; now only a genuinely stuck reader gets cut off, and
// the caller closes the connection without reusing it (a partial response
// makes the stream unframeable).
bool SendAll(int fd, const std::string& data, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          std::chrono::steady_clock::now() < deadline) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size() &&
               HexValue(text[i + 1]) >= 0 && HexValue(text[i + 2]) >= 0) {
      out += static_cast<char>(HexValue(text[i + 1]) * 16 +
                               HexValue(text[i + 2]));
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::string UrlEncode(const std::string& text) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if ((u >= 'A' && u <= 'Z') || (u >= 'a' && u <= 'z') ||
        (u >= '0' && u <= '9') || u == '.' || u == '_' || u == '~' ||
        u == '-') {
      out += c;
    } else {
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    const HttpServerOptions& options, Handler handler) {
  if (!handler) return Status::InvalidArgument("http server needs a handler");
  if (options.num_threads == 0) {
    return Status::InvalidArgument("http server needs at least one thread");
  }
  auto server = std::unique_ptr<HttpServer>(new HttpServer());
  server->handler_ = std::move(handler);
  server->options_ = options;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  server->listen_fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError("bind " + options.host + ":" +
                           std::to_string(options.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(fd, 128) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }
  server->port_ = ntohs(bound.sin_port);

  server->threads_.reserve(options.num_threads);
  for (size_t i = 0; i < options.num_threads; ++i) {
    server->threads_.emplace_back([s = server.get()] { s->AcceptLoop(); });
  }
  return server;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (stop_.exchange(true)) {
    return;
  }
  // Unblock every accept(): shutdown makes pending accepts fail without
  // racing the fd number against a new open (the close happens after the
  // threads are joined).
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() during Stop() lands here; anything else on a live
      // server is a transient accept failure worth retrying.
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    timeval timeout{};
    timeout.tv_sec = options_.recv_timeout_ms / 1000;
    timeout.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    // Bound each send() too: without SO_SNDTIMEO a reader that stops
    // draining parks the thread in send() forever. SendAll retries timed-out
    // sends until options_.send_deadline_ms of wall clock has passed.
    timeval send_timeout{};
    send_timeout.tv_sec = options_.send_timeout_ms / 1000;
    send_timeout.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  while (!stop_.load(std::memory_order_acquire)) {
    // Accumulate until the end of the request head.
    size_t head_end = buffer.find("\r\n\r\n");
    while (head_end == std::string::npos) {
      if (buffer.size() > options_.max_request_bytes) {
        HttpResponse too_big;
        too_big.status = 413;
        too_big.body = "{\"error\":\"request too large\"}";
        std::string payload =
            "HTTP/1.1 413 " + std::string(StatusText(413)) +
            "\r\nContent-Type: application/json\r\nContent-Length: " +
            std::to_string(too_big.body.size()) +
            "\r\nConnection: close\r\n\r\n" + too_big.body;
        SendAll(fd, payload, options_.send_deadline_ms);
        return;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // closed, timed out, or errored
      buffer.append(chunk, static_cast<size_t>(n));
      head_end = buffer.find("\r\n\r\n");
    }
    const std::string head = buffer.substr(0, head_end);
    buffer.erase(0, head_end + 4);

    // Request line: METHOD SP target SP version.
    const size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    bool keep_alive = true;
    HttpRequest request;
    HttpResponse response;
    const size_t sp1 = request_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos) {
      response.status = 400;
      response.body = "{\"error\":\"malformed request line\"}";
      keep_alive = false;
    } else {
      request.method = request_line.substr(0, sp1);
      std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = request_line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.0", 0) == 0) keep_alive = false;
      // "Connection: close" in any casing turns keep-alive off.
      for (size_t pos = line_end;
           pos != std::string::npos && pos + 2 < head.size();) {
        const size_t next = head.find("\r\n", pos + 2);
        std::string header = head.substr(
            pos + 2,
            (next == std::string::npos ? head.size() : next) - pos - 2);
        for (char& c : header) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (header == "connection: close") keep_alive = false;
        if (header == "connection: keep-alive") keep_alive = true;
        pos = next;
      }
      const size_t question = target.find('?');
      request.path = UrlDecode(target.substr(0, question));
      if (question != std::string::npos) {
        for (const std::string& pair :
             Split(target.substr(question + 1), '&')) {
          if (pair.empty()) continue;
          const size_t eq = pair.find('=');
          if (eq == std::string::npos) {
            request.params.emplace_back(UrlDecode(pair), "");
          } else {
            request.params.emplace_back(UrlDecode(pair.substr(0, eq)),
                                        UrlDecode(pair.substr(eq + 1)));
          }
        }
      }
      if (request.method != "GET" && request.method != "HEAD") {
        response.status = 405;
        response.body = "{\"error\":\"only GET is supported\"}";
      } else {
        response = handler_(request);
      }
    }

    std::string payload = "HTTP/1.1 " + std::to_string(response.status) +
                          " " + StatusText(response.status) +
                          "\r\nContent-Type: " + response.content_type +
                          "\r\nContent-Length: " +
                          std::to_string(response.body.size()) +
                          (keep_alive ? "\r\nConnection: keep-alive"
                                      : "\r\nConnection: close") +
                          "\r\n\r\n";
    if (request.method != "HEAD") payload += response.body;
    if (!SendAll(fd, payload, options_.send_deadline_ms) || !keep_alive) {
      return;
    }
  }
}

}  // namespace qarm
