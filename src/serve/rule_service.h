// RuleService — the serving engine's query layer, independent of the
// transport: it maps a (path, params) request to a JSON response, so the
// same object sits behind the HTTP server in production and is called
// directly by tests and the in-process benchmark.
//
// Endpoints:
//   /match  — attribute=value pairs describe a record; returns the rules
//             it matches. Reserved params: mode=rule|antecedent (default
//             rule), limit (default 100).
//   /topk   — metric=confidence|support|lift (default confidence),
//             k (default 10), attr=<name> (optional), interesting=0|1.
//   /rules  — paged browse: offset, limit (default 50), min_conf,
//             min_sup, min_lift, attr=<name>, interesting=0|1.
//   /statz  — serving counters: per-endpoint request totals, QPS over
//             the process lifetime, cache hit/miss/eviction counters per
//             cache, index sizes and build time. Never cached.
//   /healthz — {"status":"ok"} liveness probe.
//
// Responses for /match, /topk and /rules are cached in per-endpoint
// ResultCaches keyed by the canonicalized query (sorted, re-encoded
// params), so two spellings of the same query share an entry. A cache
// hit is byte-identical to recomputation by construction — entries are
// the rendered bytes — and the tests verify it end to end.
#ifndef QARM_SERVE_RULE_SERVICE_H_
#define QARM_SERVE_RULE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "serve/http_server.h"
#include "serve/result_cache.h"
#include "serve/rule_catalog.h"

namespace qarm {

struct RuleServiceOptions {
  size_t cache_bytes = 64 * 1024 * 1024;  // 0 disables caching entirely
};

class RuleService {
 public:
  RuleService(std::shared_ptr<const RuleCatalog> catalog,
              const RuleServiceOptions& options);

  // Handles one request; always returns a response (errors are JSON with
  // an "error" key and a 4xx/5xx status).
  HttpResponse Handle(const HttpRequest& request);

  // The canonical cache key of a request: path + sorted re-encoded params.
  static std::string CanonicalKey(const HttpRequest& request);

  const RuleCatalog& catalog() const { return *catalog_; }
  const ResultCacheManager* cache_manager() const {
    return cache_manager_.get();
  }

  // Renders one rule as a JSON object (shared with `qarm rules dump`).
  std::string RuleToJson(uint32_t rule_id) const;

 private:
  HttpResponse HandleMatch(
      const std::vector<std::pair<std::string, std::string>>& params);
  HttpResponse HandleTopK(
      const std::vector<std::pair<std::string, std::string>>& params);
  HttpResponse HandleRules(
      const std::vector<std::pair<std::string, std::string>>& params);
  HttpResponse HandleStatz();

  std::shared_ptr<const RuleCatalog> catalog_;
  std::unique_ptr<ResultCacheManager> cache_manager_;
  std::shared_ptr<ResultCache> match_cache_;  // null when caching disabled
  std::shared_ptr<ResultCache> topk_cache_;
  std::shared_ptr<ResultCache> rules_cache_;

  Timer uptime_;
  std::atomic<uint64_t> match_requests_{0};
  std::atomic<uint64_t> topk_requests_{0};
  std::atomic<uint64_t> rules_requests_{0};
  std::atomic<uint64_t> statz_requests_{0};
  std::atomic<uint64_t> error_responses_{0};
};

}  // namespace qarm

#endif  // QARM_SERVE_RULE_SERVICE_H_
