// Memory-budgeted concurrent result cache for serving, in the spirit of
// the ArangoDB cache subsystem: a global manager owns the total byte
// budget and hands out per-cache slices; each cache shards its entries
// into buckets with bucket-level locking so concurrent lookups on
// different shards never contend; eviction is frequency-based — when an
// insert would overflow a shard's budget, the least-frequently-hit
// entries of that shard are evicted until the new entry fits.
//
// Keys are canonicalized query strings, values are rendered responses.
// The cache is purely an accelerator: a hit must be byte-identical to
// recomputing, which the serving tests enforce.
#ifndef QARM_SERVE_RESULT_CACHE_H_
#define QARM_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace qarm {

// Counters of one cache (or the aggregate over a manager's caches).
// Within a single snapshot the counters are mutually consistent per shard
// but not across shards; they are monitoring data, not invariants.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t oversized_rejects = 0;  // values too big to ever fit a shard
  size_t entries = 0;
  size_t bytes_used = 0;
  size_t byte_budget = 0;
};

class ResultCache {
 public:
  // `byte_budget` is split evenly across `num_shards` buckets; an entry
  // larger than one bucket's slice is never cached (oversized_rejects).
  explicit ResultCache(size_t byte_budget, size_t num_shards = 16);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The cached value for `key`, bumping its frequency; nullopt on miss.
  std::optional<std::string> Lookup(const std::string& key);

  // Caches `value` under `key`, evicting least-frequently-hit entries of
  // the shard until it fits. Overwrites an existing entry for `key`.
  void Insert(const std::string& key, const std::string& value);

  void Clear();

  ResultCacheStats Stats() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string value;
    uint64_t frequency = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t oversized_rejects = 0;
  };

  // Accounted footprint of one entry (strings + bookkeeping overhead).
  static size_t EntryCost(const std::string& key, const std::string& value);

  Shard& ShardFor(const std::string& key);

  const size_t byte_budget_;
  const size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Owns the serving process's total cache budget and carves it into named
// caches (one per endpoint family). Purely an allocator plus a stats
// aggregation point — the caches themselves are independent.
class ResultCacheManager {
 public:
  explicit ResultCacheManager(size_t total_byte_budget);

  // Creates a cache taking `byte_budget` from the remaining global budget;
  // InvalidArgument when the budget is exhausted or the name is taken.
  Result<std::shared_ptr<ResultCache>> CreateCache(const std::string& name,
                                                   size_t byte_budget);

  // (name, stats) per cache, in creation order.
  std::vector<std::pair<std::string, ResultCacheStats>> AllStats() const;

  ResultCacheStats TotalStats() const;
  size_t total_byte_budget() const { return total_byte_budget_; }

 private:
  const size_t total_byte_budget_;
  size_t allocated_ = 0;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::shared_ptr<ResultCache>>> caches_;
};

}  // namespace qarm

#endif  // QARM_SERVE_RESULT_CACHE_H_
