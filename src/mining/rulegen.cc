#include "mining/rulegen.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"

namespace qarm {
namespace {

// Set difference of sorted vectors: a \ b.
std::vector<int32_t> Difference(const std::vector<int32_t>& a,
                                const std::vector<int32_t>& b) {
  std::vector<int32_t> out;
  out.reserve(a.size() - b.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// FNV-1a over the item ids; itemset collections reach into the millions, so
// hashed lookup beats an ordered map by a large constant.
struct ItemsetHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 1469598103934665603ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace

std::vector<BooleanRule> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, size_t num_transactions,
    double minconf) {
  std::unordered_map<std::vector<int32_t>, uint64_t, ItemsetHash> support;
  support.reserve(itemsets.size() * 2);
  for (const FrequentItemset& itemset : itemsets) {
    support[itemset.items] = itemset.count;
  }

  std::vector<BooleanRule> rules;
  const double n = static_cast<double>(num_transactions);

  for (const FrequentItemset& itemset : itemsets) {
    if (itemset.items.size() < 2) continue;
    const double itemset_support = static_cast<double>(itemset.count);

    // ap-genrules: grow consequents level-wise; if a consequent fails the
    // confidence test, all of its supersets fail too (antecedent support
    // only grows as the consequent shrinks... the converse: a superset
    // consequent has a smaller antecedent, hence larger antecedent support,
    // hence no larger confidence).
    std::vector<std::vector<int32_t>> consequents;
    for (int32_t item : itemset.items) consequents.push_back({item});

    while (!consequents.empty() &&
           consequents[0].size() < itemset.items.size()) {
      std::vector<std::vector<int32_t>> surviving;
      for (const std::vector<int32_t>& consequent : consequents) {
        std::vector<int32_t> antecedent =
            Difference(itemset.items, consequent);
        auto it = support.find(antecedent);
        QARM_CHECK(it != support.end());
        double confidence = itemset_support / static_cast<double>(it->second);
        if (confidence + 1e-12 >= minconf) {
          BooleanRule rule;
          rule.antecedent = std::move(antecedent);
          rule.consequent = consequent;
          rule.count = itemset.count;
          rule.support = itemset_support / n;
          rule.confidence = confidence;
          rules.push_back(std::move(rule));
          surviving.push_back(consequent);
        }
      }
      std::sort(surviving.begin(), surviving.end());
      consequents = AprioriGen(surviving);
    }

    // Handle the final level where the consequent is the whole itemset minus
    // nothing -- not a rule (antecedent would be empty), so stop before it.
    // (The loop condition consequents[0].size() < itemset.items.size()
    // already guarantees a non-empty antecedent.)
  }
  return rules;
}

}  // namespace qarm
