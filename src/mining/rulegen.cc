#include "mining/rulegen.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/macros.h"
#include "common/thread_pool.h"

namespace qarm {
namespace {

// Below this many frequent itemsets the whole generation is cheaper than
// waking a pool; the serial path is taken regardless of num_threads.
constexpr size_t kMinParallelItemsets = 128;

// Tasks per worker: itemset costs vary wildly (rule count is exponential in
// itemset size), so hand the pool more chunks than workers and let dynamic
// task claiming balance them.
constexpr size_t kChunksPerThread = 8;

// Itemset-support lookup; itemset collections reach into the millions, so
// hashed lookup beats an ordered map by a large constant. Uses the shared
// FNV-1a+splitmix64 hash (common/hash.h) — short small-integer keys need
// the finalizer to spread over the bucket mask.
using SupportMap =
    std::unordered_map<std::vector<int32_t>, uint64_t, Int32VectorHash>;

// Set difference of sorted vectors: a \ b.
std::vector<int32_t> Difference(const std::vector<int32_t>& a,
                                const std::vector<int32_t>& b) {
  std::vector<int32_t> out;
  out.reserve(a.size() - b.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// ap-genrules for one frequent itemset: grow consequents level-wise; if a
// consequent fails the confidence test, all of its supersets fail too (a
// superset consequent has a smaller antecedent, hence larger antecedent
// support, hence no larger confidence). Appends rules to `rules` in the
// same order the serial algorithm emits them.
void GenerateRulesFor(const FrequentItemset& itemset,
                      const SupportMap& support, double n, double minconf,
                      std::vector<BooleanRule>* rules) {
  if (itemset.items.size() < 2) return;
  const double itemset_support = static_cast<double>(itemset.count);

  std::vector<std::vector<int32_t>> consequents;
  for (int32_t item : itemset.items) consequents.push_back({item});

  // The loop condition consequents[0].size() < itemset.items.size()
  // guarantees a non-empty antecedent (the whole itemset is never a
  // consequent).
  while (!consequents.empty() &&
         consequents[0].size() < itemset.items.size()) {
    std::vector<std::vector<int32_t>> surviving;
    for (const std::vector<int32_t>& consequent : consequents) {
      std::vector<int32_t> antecedent = Difference(itemset.items, consequent);
      auto it = support.find(antecedent);
      QARM_CHECK(it != support.end());
      double confidence = itemset_support / static_cast<double>(it->second);
      if (confidence + 1e-12 >= minconf) {
        BooleanRule rule;
        rule.antecedent = std::move(antecedent);
        rule.consequent = consequent;
        rule.count = itemset.count;
        rule.support = itemset_support / n;
        rule.confidence = confidence;
        rules->push_back(std::move(rule));
        surviving.push_back(consequent);
      }
    }
    std::sort(surviving.begin(), surviving.end());
    consequents = AprioriGen(surviving);
  }
}

}  // namespace

std::vector<BooleanRule> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, size_t num_transactions,
    double minconf, size_t num_threads, size_t* threads_used) {
  SupportMap support;
  support.reserve(itemsets.size() * 2);
  for (const FrequentItemset& itemset : itemsets) {
    support[itemset.items] = itemset.count;
  }

  const double n = static_cast<double>(num_transactions);
  const size_t threads = itemsets.size() >= kMinParallelItemsets
                             ? ResolveNumThreads(num_threads)
                             : 1;

  std::vector<BooleanRule> rules;
  if (threads <= 1) {
    if (threads_used != nullptr) *threads_used = 1;
    for (const FrequentItemset& itemset : itemsets) {
      GenerateRulesFor(itemset, support, n, minconf, &rules);
    }
    return rules;
  }

  // Fan out itemset chunks across the pool; the support map and the input
  // are read-only during the scan, and each chunk fills its own buffer.
  // Concatenating the buffers in chunk order reproduces the serial rule
  // order exactly.
  if (threads_used != nullptr) *threads_used = threads;
  const std::vector<IndexRange> chunks =
      SplitRange(itemsets.size(), threads * kChunksPerThread);
  std::vector<std::vector<BooleanRule>> partial(chunks.size());
  ThreadPool pool(threads);
  pool.ParallelFor(chunks.size(), [&](size_t chunk) {
    for (size_t i = chunks[chunk].begin; i < chunks[chunk].end; ++i) {
      GenerateRulesFor(itemsets[i], support, n, minconf, &partial[chunk]);
    }
  });
  size_t total = 0;
  for (const std::vector<BooleanRule>& p : partial) total += p.size();
  rules.reserve(total);
  for (std::vector<BooleanRule>& p : partial) {
    for (BooleanRule& rule : p) rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace qarm
