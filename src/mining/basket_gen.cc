#include "mining/basket_gen.h"

#include <algorithm>

#include "common/random.h"

namespace qarm {

std::vector<Transaction> MakeBasketData(const BasketConfig& config) {
  Rng rng(config.seed);

  // Pattern pool: item popularity is Zipf-skewed so patterns share items.
  ZipfDistribution item_dist(config.num_items, 0.8);
  std::vector<std::vector<int32_t>> patterns(config.num_patterns);
  for (auto& pattern : patterns) {
    size_t size = std::max<size_t>(
        1, static_cast<size_t>(rng.UniformInt(
               1, static_cast<int64_t>(2 * config.avg_pattern_size - 1))));
    for (size_t i = 0; i < size; ++i) {
      pattern.push_back(static_cast<int32_t>(item_dist.Sample(&rng)));
    }
    std::sort(pattern.begin(), pattern.end());
    pattern.erase(std::unique(pattern.begin(), pattern.end()), pattern.end());
  }

  // Pattern popularity is itself skewed.
  ZipfDistribution pattern_dist(config.num_patterns, 1.0);

  std::vector<Transaction> transactions;
  transactions.reserve(config.num_transactions);
  for (size_t t = 0; t < config.num_transactions; ++t) {
    Transaction txn;
    if (rng.Bernoulli(config.pattern_probability)) {
      const auto& pattern = patterns[pattern_dist.Sample(&rng)];
      txn = pattern;
    }
    size_t target = std::max<size_t>(
        1, static_cast<size_t>(rng.UniformInt(
               1, static_cast<int64_t>(2 * config.avg_transaction_size - 1))));
    while (txn.size() < target) {
      txn.push_back(static_cast<int32_t>(item_dist.Sample(&rng)));
    }
    std::sort(txn.begin(), txn.end());
    txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    transactions.push_back(std::move(txn));
  }
  return transactions;
}

}  // namespace qarm
