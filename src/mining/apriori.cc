#include "mining/apriori.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "index/hash_tree.h"

namespace qarm {
namespace {

// Below this many transactions a counting pass is cheaper than waking the
// pool; the serial path is taken regardless of num_threads.
constexpr size_t kMinParallelTransactions = 1024;

}  // namespace

std::vector<std::vector<int32_t>> AprioriGen(
    const std::vector<std::vector<int32_t>>& frequent) {
  std::vector<std::vector<int32_t>> candidates;
  if (frequent.empty()) return candidates;
  const size_t k_minus_1 = frequent[0].size();

  // Join phase: p and q share the first k-2 items; p.last < q.last.
  // `frequent` is sorted, so join partners are contiguous runs.
  size_t run_start = 0;
  while (run_start < frequent.size()) {
    size_t run_end = run_start + 1;
    auto same_prefix = [&](const std::vector<int32_t>& a,
                           const std::vector<int32_t>& b) {
      return std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1);
    };
    while (run_end < frequent.size() &&
           same_prefix(frequent[run_start], frequent[run_end])) {
      ++run_end;
    }
    for (size_t i = run_start; i < run_end; ++i) {
      for (size_t j = i + 1; j < run_end; ++j) {
        std::vector<int32_t> candidate = frequent[i];
        candidate.push_back(frequent[j].back());
        candidates.push_back(std::move(candidate));
      }
    }
    run_start = run_end;
  }

  // Prune phase: every (k-1)-subset must be frequent.
  auto is_frequent = [&](const std::vector<int32_t>& set) {
    return std::binary_search(frequent.begin(), frequent.end(), set);
  };
  std::vector<std::vector<int32_t>> pruned;
  pruned.reserve(candidates.size());
  std::vector<int32_t> subset(k_minus_1);
  for (std::vector<int32_t>& candidate : candidates) {
    bool keep = true;
    // Skipping position k-1 and k (the two join parents) is unnecessary but
    // harmless; check all subsets for clarity.
    for (size_t skip = 0; keep && skip + 2 < candidate.size(); ++skip) {
      size_t out = 0;
      for (size_t i = 0; i < candidate.size(); ++i) {
        if (i != skip) subset[out++] = candidate[i];
      }
      keep = is_frequent(subset);
    }
    if (keep) pruned.push_back(std::move(candidate));
  }
  return pruned;
}

std::vector<FrequentItemset> AprioriMine(
    const std::vector<Transaction>& transactions,
    const AprioriOptions& options) {
  std::vector<FrequentItemset> result;
  if (transactions.empty()) return result;
  uint64_t min_count = static_cast<uint64_t>(std::ceil(
      options.minsup * static_cast<double>(transactions.size()) - 1e-9));
  if (min_count == 0) min_count = 1;

  // Pass 1: count single items directly.
  std::map<int32_t, uint64_t> item_counts;
  for (const Transaction& t : transactions) {
    for (size_t i = 0; i < t.size(); ++i) {
      QARM_DCHECK(i == 0 || t[i - 1] < t[i]);
      ++item_counts[t[i]];
    }
  }
  std::vector<std::vector<int32_t>> frequent;  // L_{k}, sorted
  for (const auto& [item, count] : item_counts) {
    if (count >= min_count && count > 0) {
      result.push_back(FrequentItemset{{item}, count});
      frequent.push_back({item});
    }
  }

  // Pool for the counting passes: created lazily on the first pass that is
  // large enough to shard, then reused across passes.
  const size_t threads = transactions.size() >= kMinParallelTransactions
                             ? ResolveNumThreads(options.num_threads)
                             : 1;
  std::unique_ptr<ThreadPool> pool;

  // Passes k >= 2.
  while (!frequent.empty()) {
    std::vector<std::vector<int32_t>> candidates = AprioriGen(frequent);
    if (candidates.empty()) break;

    HashTree tree(options.leaf_capacity, options.fanout);
    for (size_t i = 0; i < candidates.size(); ++i) {
      tree.Insert(candidates[i], static_cast<int32_t>(i));
    }
    std::vector<uint64_t> counts(candidates.size(), 0);
    if (threads <= 1) {
      for (const Transaction& t : transactions) {
        tree.ForEachSubset(
            t, [&counts](int32_t id) { ++counts[static_cast<size_t>(id)]; });
      }
    } else {
      // Shard the transactions; each worker probes the (now immutable) tree
      // with its own scratch into its own counter vector. Addition commutes,
      // so the shard-order reduction is identical to the serial counts.
      if (pool == nullptr) pool = std::make_unique<ThreadPool>(threads);
      const std::vector<IndexRange> shards =
          SplitRange(transactions.size(), threads);
      std::vector<std::vector<uint64_t>> partial(
          shards.size(), std::vector<uint64_t>(candidates.size(), 0));
      pool->ParallelFor(shards.size(), [&](size_t s) {
        std::vector<uint64_t>& local = partial[s];
        HashTree::SubsetScratch scratch;
        for (size_t i = shards[s].begin; i < shards[s].end; ++i) {
          tree.ForEachSubset(
              transactions[i],
              [&local](int32_t id) { ++local[static_cast<size_t>(id)]; },
              &scratch);
        }
      });
      for (const std::vector<uint64_t>& local : partial) {
        for (size_t i = 0; i < counts.size(); ++i) counts[i] += local[i];
      }
    }

    frequent.clear();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (counts[i] >= min_count && counts[i] > 0) {
        result.push_back(FrequentItemset{candidates[i], counts[i]});
        frequent.push_back(std::move(candidates[i]));
      }
    }
    // AprioriGen requires sorted input; frequent candidates emerge in
    // generation order, which is already lexicographic, but sort defensively.
    std::sort(frequent.begin(), frequent.end());
  }
  return result;
}

}  // namespace qarm
