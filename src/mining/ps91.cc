#include "mining/ps91.h"

#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace qarm {

std::vector<Ps91Rule> Ps91MineAttribute(const MappedTable& table,
                                        size_t antecedent_attr,
                                        const Ps91Options& options) {
  QARM_CHECK_LT(antecedent_attr, table.num_attributes());
  const size_t num_rows = table.num_rows();
  const size_t num_attrs = table.num_attributes();
  std::vector<Ps91Rule> rules;
  if (num_rows == 0) return rules;

  const size_t ante_domain = table.attribute(antecedent_attr).domain_size();

  // Hash "cells": per antecedent value, a histogram of every other
  // attribute's values, plus the antecedent value's own count.
  std::vector<uint64_t> ante_counts(ante_domain, 0);
  // summaries[a][v * domain(attr) + w]: records with antecedent value v and
  // attribute a value w.
  std::vector<std::vector<uint64_t>> summaries(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    if (a == antecedent_attr) continue;
    summaries[a].assign(ante_domain * table.attribute(a).domain_size(), 0);
  }

  for (size_t r = 0; r < num_rows; ++r) {
    const int32_t* row = table.row(r);
    if (row[antecedent_attr] == kMissingValue) continue;
    const auto v = static_cast<size_t>(row[antecedent_attr]);
    ++ante_counts[v];
    for (size_t a = 0; a < num_attrs; ++a) {
      if (a == antecedent_attr || row[a] == kMissingValue) continue;
      ++summaries[a][v * table.attribute(a).domain_size() +
                     static_cast<size_t>(row[a])];
    }
  }

  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.minsup * static_cast<double>(num_rows) - 1e-9));
  if (min_count == 0) min_count = 1;

  for (size_t v = 0; v < ante_domain; ++v) {
    if (ante_counts[v] == 0) continue;
    for (size_t a = 0; a < num_attrs; ++a) {
      if (a == antecedent_attr) continue;
      const size_t domain = table.attribute(a).domain_size();
      for (size_t w = 0; w < domain; ++w) {
        uint64_t joint = summaries[a][v * domain + w];
        if (joint < min_count) continue;
        double confidence =
            static_cast<double>(joint) / static_cast<double>(ante_counts[v]);
        if (confidence + 1e-12 < options.minconf) continue;
        Ps91Rule rule;
        rule.antecedent_attr = antecedent_attr;
        rule.antecedent_value = static_cast<int32_t>(v);
        rule.consequent_attr = a;
        rule.consequent_value = static_cast<int32_t>(w);
        rule.count = joint;
        rule.support =
            static_cast<double>(joint) / static_cast<double>(num_rows);
        rule.confidence = confidence;
        rules.push_back(rule);
      }
    }
  }
  return rules;
}

std::vector<Ps91Rule> Ps91MineAll(const MappedTable& table,
                                  const Ps91Options& options) {
  std::vector<Ps91Rule> all;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    std::vector<Ps91Rule> rules = Ps91MineAttribute(table, a, options);
    all.insert(all.end(), rules.begin(), rules.end());
  }
  return all;
}

std::string Ps91RuleToString(const Ps91Rule& rule, const MappedTable& table) {
  const MappedAttribute& ante = table.attribute(rule.antecedent_attr);
  const MappedAttribute& cons = table.attribute(rule.consequent_attr);
  return StrFormat(
      "<%s: %s> => <%s: %s> (support %.1f%%, confidence %.1f%%)",
      ante.name.c_str(),
      ante.DecodeRange(rule.antecedent_value, rule.antecedent_value).c_str(),
      cons.name.c_str(),
      cons.DecodeRange(rule.consequent_value, rule.consequent_value).c_str(),
      rule.support * 100.0, rule.confidence * 100.0);
}

}  // namespace qarm
