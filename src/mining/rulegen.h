// Rule generation from frequent itemsets — the ap-genrules procedure of
// [AS94], used by step 4 of the paper's problem decomposition. Works on any
// itemsets given as sorted integer vectors, so the quantitative miner reuses
// it after encoding its <attribute, range> items as integers.
#ifndef QARM_MINING_RULEGEN_H_
#define QARM_MINING_RULEGEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mining/apriori.h"

namespace qarm {

// An association rule over integer item ids.
struct BooleanRule {
  std::vector<int32_t> antecedent;  // sorted
  std::vector<int32_t> consequent;  // sorted
  uint64_t count = 0;               // absolute support of antecedent+consequent
  double support = 0.0;             // fraction of transactions
  double confidence = 0.0;

  bool operator==(const BooleanRule& other) const {
    return antecedent == other.antecedent && consequent == other.consequent;
  }
};

// Generates every rule X => Y with X ∪ Y frequent, X ∩ Y = ∅, Y non-empty,
// and confidence >= minconf. `itemsets` must contain every frequent itemset
// together with all of its subsets (Apriori guarantees this).
// `num_transactions` converts counts to support fractions.
//
// Rule generation is independent per frequent itemset, so `num_threads > 1`
// (0 = all hardware cores) fans itemsets out across a worker pool with
// per-chunk rule buffers concatenated in itemset order — the returned rules
// are identical, in the same order, at any thread count. `threads_used`,
// when non-null, receives the parallelism actually applied (1 when the
// input was too small to shard).
std::vector<BooleanRule> GenerateRules(
    const std::vector<FrequentItemset>& itemsets, size_t num_transactions,
    double minconf, size_t num_threads = 1, size_t* threads_used = nullptr);

}  // namespace qarm

#endif  // QARM_MINING_RULEGEN_H_
