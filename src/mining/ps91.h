// The [PS91] baseline (Piatetsky-Shapiro's KID3-style strong-rule finder),
// described in the paper's Related Work (Section 1.3): rules of the form
// (A = a) => (B = b) where antecedent and consequent are each a single
// <attribute, value> pair. One pass per antecedent attribute hashes records
// by the attribute's value; each hash cell keeps running summaries of every
// other attribute, from which the rules implied by (A = a) are derived.
//
// Finding all such rules for all attributes requires one run per attribute
// (and would be exponential for multi-attribute antecedents) — this is the
// limitation that motivates the paper's approach, quantified in
// bench_ps91_comparison.
#ifndef QARM_MINING_PS91_H_
#define QARM_MINING_PS91_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "partition/mapped_table.h"

namespace qarm {

// A single-antecedent, single-consequent value rule.
struct Ps91Rule {
  size_t antecedent_attr = 0;
  int32_t antecedent_value = 0;
  size_t consequent_attr = 0;
  int32_t consequent_value = 0;
  uint64_t count = 0;  // records satisfying both sides
  double support = 0.0;
  double confidence = 0.0;
};

struct Ps91Options {
  double minsup = 0.01;
  double minconf = 0.5;
};

// Runs one [PS91] pass with `antecedent_attr` as the hashed attribute,
// returning all rules (antecedent_attr = a) => (B = b) meeting the
// thresholds.
std::vector<Ps91Rule> Ps91MineAttribute(const MappedTable& table,
                                        size_t antecedent_attr,
                                        const Ps91Options& options);

// Runs the pass for every attribute (the exhaustive mode the paper calls
// out as requiring one run per attribute).
std::vector<Ps91Rule> Ps91MineAll(const MappedTable& table,
                                  const Ps91Options& options);

// Renders a rule using the table's decode metadata.
std::string Ps91RuleToString(const Ps91Rule& rule, const MappedTable& table);

}  // namespace qarm

#endif  // QARM_MINING_PS91_H_
