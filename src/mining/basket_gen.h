// Synthetic market-basket data for the boolean Apriori benchmarks, in the
// spirit of the Quest generator used by [AS94]: a pool of potentially
// frequent patterns is drawn once, then each transaction is assembled from
// a few patterns plus noise items.
#ifndef QARM_MINING_BASKET_GEN_H_
#define QARM_MINING_BASKET_GEN_H_

#include <cstddef>
#include <cstdint>

#include "mining/apriori.h"

namespace qarm {

struct BasketConfig {
  size_t num_transactions = 10000;
  size_t num_items = 1000;        // item universe size
  size_t avg_transaction_size = 10;
  size_t num_patterns = 100;      // potentially frequent patterns
  size_t avg_pattern_size = 4;
  double pattern_probability = 0.5;  // chance a transaction embeds a pattern
  uint64_t seed = 42;
};

// Generates transactions (sorted, deduplicated item ids).
std::vector<Transaction> MakeBasketData(const BasketConfig& config);

}  // namespace qarm

#endif  // QARM_MINING_BASKET_GEN_H_
