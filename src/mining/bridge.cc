#include "mining/bridge.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace qarm {

BooleanEncoding::BooleanEncoding(const MappedTable& table) {
  offsets_.resize(table.num_attributes());
  size_t offset = 0;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    offsets_[a] = offset;
    offset += table.attribute(a).domain_size();
  }
  total_ = offset;
}

size_t BooleanEncoding::AttrOf(int32_t item) const {
  QARM_DCHECK(item >= 0 && static_cast<size_t>(item) < total_);
  // Last offset <= item.
  size_t lo = 0, hi = offsets_.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (offsets_[mid] <= static_cast<size_t>(item)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<Transaction> ToTransactions(const MappedTable& table,
                                        const BooleanEncoding& encoding) {
  std::vector<Transaction> transactions;
  transactions.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Transaction t;
    t.reserve(table.num_attributes());
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      if (table.value(r, a) == kMissingValue) continue;
      t.push_back(encoding.Encode(a, table.value(r, a)));
    }
    // Encoded ids are increasing in attribute order already.
    transactions.push_back(std::move(t));
  }
  return transactions;
}

BridgeResult MineViaBooleanBridge(const MappedTable& table, double minsup,
                                  double minconf) {
  BooleanEncoding encoding(table);
  std::vector<Transaction> transactions = ToTransactions(table, encoding);
  AprioriOptions options;
  options.minsup = minsup;
  BridgeResult result;
  result.itemsets = AprioriMine(transactions, options);
  result.rules = GenerateRules(result.itemsets, transactions.size(), minconf);
  return result;
}

std::string BridgeRuleToString(const BooleanRule& rule,
                               const BooleanEncoding& encoding,
                               const MappedTable& table) {
  auto render_side = [&](const std::vector<int32_t>& items) {
    std::vector<std::string> parts;
    parts.reserve(items.size());
    for (int32_t item : items) {
      size_t attr = encoding.AttrOf(item);
      int32_t value = encoding.ValueOf(item);
      parts.push_back(StrFormat(
          "<%s: %s>", table.attribute(attr).name.c_str(),
          table.attribute(attr).DecodeRange(value, value).c_str()));
    }
    return Join(parts, " and ");
  };
  return StrFormat("%s => %s (support %.1f%%, confidence %.1f%%)",
                   render_side(rule.antecedent).c_str(),
                   render_side(rule.consequent).c_str(), rule.support * 100.0,
                   rule.confidence * 100.0);
}

}  // namespace qarm
