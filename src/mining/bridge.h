// The naive Section 1.1 mapping of the quantitative problem onto boolean
// association rules (Figure 2): every <attribute, mapped value> pair becomes
// one boolean item and records become transactions. Without range
// combination this suffers the "MinSup" problem (fine intervals lack
// support) or, with coarse intervals, the "MinConf" problem — the behaviour
// bench_mapping_woes quantifies against the paper's algorithm.
#ifndef QARM_MINING_BRIDGE_H_
#define QARM_MINING_BRIDGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mining/apriori.h"
#include "mining/rulegen.h"
#include "partition/mapped_table.h"

namespace qarm {

// Translates boolean item ids of the bridge encoding back to attributes.
class BooleanEncoding {
 public:
  explicit BooleanEncoding(const MappedTable& table);

  // Item id for <attribute, mapped value>.
  int32_t Encode(size_t attr, int32_t value) const {
    return static_cast<int32_t>(offsets_[attr]) + value;
  }
  // Attribute index of an item id.
  size_t AttrOf(int32_t item) const;
  // Mapped value of an item id.
  int32_t ValueOf(int32_t item) const {
    return item - static_cast<int32_t>(offsets_[AttrOf(item)]);
  }
  // Total number of boolean items.
  size_t num_items() const { return total_; }

 private:
  std::vector<size_t> offsets_;  // per attribute, cumulative domain sizes
  size_t total_ = 0;
};

// Converts each record to a transaction of encoded items.
std::vector<Transaction> ToTransactions(const MappedTable& table,
                                        const BooleanEncoding& encoding);

// End-to-end naive pipeline: encode, run boolean Apriori, generate rules.
// No interval combination happens: the result demonstrates the mapping woes.
struct BridgeResult {
  std::vector<FrequentItemset> itemsets;
  std::vector<BooleanRule> rules;
};
BridgeResult MineViaBooleanBridge(const MappedTable& table, double minsup,
                                  double minconf);

// Renders a bridge rule using the mapped table's decode metadata.
std::string BridgeRuleToString(const BooleanRule& rule,
                               const BooleanEncoding& encoding,
                               const MappedTable& table);

}  // namespace qarm

#endif  // QARM_MINING_BRIDGE_H_
