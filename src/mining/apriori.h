// The Apriori algorithm of [AS94] for boolean association rules. This is
// both the baseline the paper builds on (Section 5 reuses its structure and
// hash tree) and the engine behind the naive map-to-boolean bridge of
// Section 1.1.
#ifndef QARM_MINING_APRIORI_H_
#define QARM_MINING_APRIORI_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qarm {

// A transaction: sorted, unique item ids.
using Transaction = std::vector<int32_t>;

// A frequent itemset with its absolute support count.
struct FrequentItemset {
  std::vector<int32_t> items;  // sorted
  uint64_t count = 0;

  bool operator==(const FrequentItemset& other) const {
    return items == other.items && count == other.count;
  }
};

// Tuning knobs for the Apriori driver.
struct AprioriOptions {
  // Minimum support as a fraction of the transaction count.
  double minsup = 0.01;
  // Hash-tree shape.
  size_t leaf_capacity = 32;
  size_t fanout = 64;
  // Workers for the per-pass subset counting (1 = serial, 0 = all hardware
  // cores). Counts are accumulated per worker and reduced in shard order,
  // so the mined itemsets are identical at any thread count.
  size_t num_threads = 1;
};

// Candidate generation (the apriori-gen function): joins L_{k-1} with itself
// on the first k-2 items and prunes joins with an infrequent (k-1)-subset.
// `frequent` must be lexicographically sorted. Exposed for testing.
std::vector<std::vector<int32_t>> AprioriGen(
    const std::vector<std::vector<int32_t>>& frequent);

// Mines all frequent itemsets (k >= 1) of `transactions`. Results are
// ordered by size, then lexicographically.
std::vector<FrequentItemset> AprioriMine(
    const std::vector<Transaction>& transactions,
    const AprioriOptions& options);

}  // namespace qarm

#endif  // QARM_MINING_APRIORI_H_
