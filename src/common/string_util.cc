#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace qarm {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace qarm
