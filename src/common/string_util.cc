#include "common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace qarm {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\r' ||
          s[begin] == '\n')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r' ||
          s[end - 1] == '\n')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

Result<double> ParseDouble(std::string_view text) {
  std::string field(StripWhitespace(text));
  if (field.empty()) {
    return Status::InvalidArgument("expected a number, got empty text");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("'" + field + "' is not a number");
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    return Status::OutOfRange("'" + field + "' is out of range for a double");
  }
  return v;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  std::string field(StripWhitespace(text));
  if (field.empty()) {
    return Status::InvalidArgument("expected an integer, got empty text");
  }
  // strtoull silently negates "-1"; reject any sign explicitly.
  if (field[0] == '-' || field[0] == '+') {
    return Status::InvalidArgument("'" + field +
                                   "' is not an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("'" + field +
                                   "' is not an unsigned integer");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("'" + field + "' overflows a 64-bit integer");
  }
  return static_cast<uint64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace qarm
