#include "common/logging.h"

#include <cstdio>

namespace qarm {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  (void)file;
  (void)line;
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level) return;
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level_), stream_.str().c_str());
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace qarm
