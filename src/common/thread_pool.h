// A small fixed-size worker pool for data-parallel scans. The mining hot
// paths (pass-1 value counting, the per-pass support-counting scan) shard
// the record range into contiguous chunks and run one chunk per worker; the
// calling thread participates, so a pool of N threads means N-1 spawned
// workers. Determinism note: QARM only ever reduces integer counters across
// workers, so any schedule produces identical results.
#ifndef QARM_COMMON_THREAD_POOL_H_
#define QARM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qarm {

// Resolves a user-facing thread-count option: 0 means one thread per
// hardware core (never less than 1), any other value is taken as-is.
size_t ResolveNumThreads(size_t requested);

// One contiguous shard of an index range.
struct IndexRange {
  size_t begin = 0;
  size_t end = 0;  // exclusive
  size_t size() const { return end - begin; }
};

// Splits [0, n) into at most `chunks` contiguous near-equal ranges (the
// first n % chunks ranges are one element longer). Returns min(chunks, n)
// non-empty ranges; empty when n == 0.
std::vector<IndexRange> SplitRange(size_t n, size_t chunks);

// Fixed-size pool. ParallelFor dispatches task indices to the workers and
// the calling thread and blocks until all tasks complete. Not reentrant:
// tasks must not call ParallelFor on the same pool.
class ThreadPool {
 public:
  // `num_threads` >= 1 is the total parallelism (the constructor spawns
  // num_threads - 1 workers; 1 means everything runs on the caller).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  // Runs fn(i) for every i in [0, num_tasks). Tasks are claimed dynamically
  // (an atomic cursor), so uneven task costs still balance. `fn` must not
  // throw.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  // All state of one ParallelFor call. Workers hold a shared_ptr while
  // draining it, so a straggler waking after the call returned only ever
  // touches its own (exhausted) job, never a newer one.
  struct Job;

  void WorkerLoop();
  void RunTasks(Job* job);

  const size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  // workers wait for a new job
  std::condition_variable done_cv_;  // the caller waits for completion
  bool stop_ = false;
  uint64_t job_generation_ = 0;  // bumped per ParallelFor call
  std::shared_ptr<Job> job_;
};

}  // namespace qarm

#endif  // QARM_COMMON_THREAD_POOL_H_
