// RetryPolicy: bounded retries with exponential backoff and deterministic
// jitter for transient I/O failures (a flaky block read, an injected fault
// from storage/fault_injection.h). The jitter draws from SplitMix64 keyed by
// (seed, key, attempt), so a given policy retries at identical delays on
// every run and on every platform — retried runs stay reproducible.
#ifndef QARM_COMMON_RETRY_H_
#define QARM_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/status.h"

namespace qarm {

struct RetryPolicy {
  // Total attempts, including the first; 1 (the default) disables retries.
  size_t max_attempts = 1;
  // Delay before retry r (1-based) is
  //   min(initial_backoff_ms * backoff_multiplier^(r-1), max_backoff_ms)
  // scaled by a deterministic jitter factor in [0.5, 1.0).
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  uint64_t jitter_seed = 0x7261746c72796aULL;
};

// The capped pre-jitter delay for retry `retry` (1-based): exactly
//   min(initial_backoff_ms * backoff_multiplier^(retry-1), max_backoff_ms).
// Closed form rather than a multiply loop: the loop's `delay < max` guard
// stopped compounding one step early in edge configurations (a multiplier
// below 1 decaying from above the cap, an initial delay at the cap), so the
// retry after the cap was first hit could sit one multiplier-step off the
// documented schedule. pow() also cannot overflow-accumulate: an infinite
// intermediate still caps at max_backoff_ms through std::min.
inline double RetryBaseDelayMs(const RetryPolicy& policy, size_t retry) {
  const double steps = retry > 0 ? static_cast<double>(retry - 1) : 0.0;
  double delay =
      policy.initial_backoff_ms * std::pow(policy.backoff_multiplier, steps);
  if (!(delay >= 0.0)) delay = 0.0;  // NaN or negative inputs -> no sleep
  return std::min(delay, policy.max_backoff_ms);
}

// Backoff (milliseconds) to sleep before retry `retry` (1-based) of the
// operation identified by `key` (e.g. a block index). Deterministic in
// (policy, retry, key): RetryBaseDelayMs scaled by jitter in [0.5, 1.0).
inline double RetryBackoffMs(const RetryPolicy& policy, size_t retry,
                             uint64_t key) {
  const double delay = RetryBaseDelayMs(policy, retry);
  const uint64_t h =
      SplitMix64(policy.jitter_seed ^ (key * 0x9e3779b97f4a7c15ULL) ^ retry);
  // 53 mantissa bits -> uniform [0, 1); jitter scales into [0.5, 1.0) so
  // backoff never collapses to zero and concurrent retriers desynchronize.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return delay * (0.5 + 0.5 * u);
}

// Runs `fn` (a Status-returning callable) until it succeeds or
// `policy.max_attempts` attempts are exhausted, sleeping the jittered
// backoff between attempts. Returns the final Status (the last failure
// verbatim — messages stay intact for matching and logging). Each retry
// performed is counted into `*retries` when non-null; the caller surfaces
// the total through its stats.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, uint64_t key,
                        uint64_t* retries, Fn&& fn) {
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  Status status;
  for (size_t attempt = 1;; ++attempt) {
    status = fn();
    if (status.ok() || attempt >= max_attempts) return status;
    if (retries != nullptr) ++*retries;
    const double delay_ms = RetryBackoffMs(policy, attempt, key);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
}

}  // namespace qarm

#endif  // QARM_COMMON_RETRY_H_
