#include "common/thread_pool.h"

#include <atomic>

#include "common/macros.h"

namespace qarm {

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::vector<IndexRange> SplitRange(size_t n, size_t chunks) {
  std::vector<IndexRange> ranges;
  if (n == 0 || chunks == 0) return ranges;
  if (chunks > n) chunks = n;
  const size_t base = n / chunks;
  const size_t extra = n % chunks;
  size_t begin = 0;
  for (size_t i = 0; i < chunks; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  QARM_CHECK_EQ(begin, n);
  return ranges;
}

struct ThreadPool::Job {
  std::function<void(size_t)> fn;
  size_t num_tasks = 0;
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> pending_tasks{0};
};

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(num_threads) {
  QARM_CHECK_GE(num_threads_, 1u);
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTasks(Job* job) {
  while (true) {
    const size_t i = job->next_task.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->num_tasks) break;
    job->fn(i);
    if (job->pending_tasks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task done: wake the caller. Taking the lock orders the notify
      // after the caller's predicate check began.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&] {
        return stop_ || job_generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = job_generation_;
      job = job_;
    }
    if (job != nullptr) RunTasks(job.get());
  }
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->num_tasks = num_tasks;
  job->pending_tasks.store(num_tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_generation_;
  }
  wake_cv_.notify_all();
  RunTasks(job.get());
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->pending_tasks.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace qarm
