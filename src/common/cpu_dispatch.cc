#include "common/cpu_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QARM_X86_DISPATCH 1
#else
#define QARM_X86_DISPATCH 0
#endif

namespace qarm {
namespace {

constexpr int kIsaUnset = -1;

// ActiveIsa() resolution, kIsaUnset until first use. Relaxed is enough: the
// value is write-once (or test-toggled between runs) and any racing reader
// simply re-derives the same value.
std::atomic<int> g_active_isa{kIsaUnset};
std::atomic<int> g_test_isa{kIsaUnset};

SimdIsa ClampToDetected(SimdIsa requested, const char* origin) {
  const SimdIsa detected = DetectCpuIsa();
  if (static_cast<int>(requested) <= static_cast<int>(detected)) {
    return requested;
  }
  QARM_LOG(Warning) << origin << " requests " << IsaName(requested)
                    << " but this CPU supports at most " << IsaName(detected)
                    << "; clamping";
  return detected;
}

SimdIsa ResolveActiveIsa() {
  const char* forced = std::getenv("QARM_FORCE_ISA");
  if (forced != nullptr && forced[0] != '\0') {
    SimdIsa isa;
    if (ParseIsaName(forced, &isa)) {
      return ClampToDetected(isa, "QARM_FORCE_ISA");
    }
    QARM_LOG(Warning) << "unrecognized QARM_FORCE_ISA value \"" << forced
                      << "\" (want scalar|sse42|avx2); using CPU detection";
  }
  return DetectCpuIsa();
}

}  // namespace

const char* IsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kSse42:
      return "sse42";
    case SimdIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseIsaName(std::string_view name, SimdIsa* isa) {
  if (name == "scalar") {
    *isa = SimdIsa::kScalar;
  } else if (name == "sse42") {
    *isa = SimdIsa::kSse42;
  } else if (name == "avx2") {
    *isa = SimdIsa::kAvx2;
  } else {
    return false;
  }
  return true;
}

SimdIsa DetectCpuIsa() {
#if QARM_X86_DISPATCH
  // __builtin_cpu_supports reads cpuid once and caches; AVX2 implies the
  // OS saved YMM state per the builtin's semantics.
  static const SimdIsa detected = [] {
    if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return SimdIsa::kSse42;
    return SimdIsa::kScalar;
  }();
  return detected;
#else
  return SimdIsa::kScalar;
#endif
}

SimdIsa ActiveIsa() {
  const int test = g_test_isa.load(std::memory_order_relaxed);
  if (test != kIsaUnset) return static_cast<SimdIsa>(test);
  int cached = g_active_isa.load(std::memory_order_relaxed);
  if (cached == kIsaUnset) {
    cached = static_cast<int>(ResolveActiveIsa());
    g_active_isa.store(cached, std::memory_order_relaxed);
  }
  return static_cast<SimdIsa>(cached);
}

void SetIsaForTest(SimdIsa isa) {
  g_test_isa.store(static_cast<int>(ClampToDetected(isa, "SetIsaForTest")),
                   std::memory_order_relaxed);
}

void ClearIsaForTest() {
  g_test_isa.store(kIsaUnset, std::memory_order_relaxed);
}

}  // namespace qarm
