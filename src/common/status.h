// Status and Result<T>: exception-free error propagation for recoverable
// failures (bad options, malformed input files). Modeled on the
// Arrow/Abseil style used throughout database C++ codebases.
#ifndef QARM_COMMON_STATUS_H_
#define QARM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace qarm {

// Coarse error taxonomy; enough to route errors in a library of this size.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kInternal,
  kCancelled,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocation), explicit on the failure path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // A run stopped on purpose before completing (SIGINT, a crash-test stop
  // point) — distinct from an error so callers can exit cleanly.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::InvalidArgument("nope"); }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {
    QARM_CHECK(!std::get<Status>(value_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  // Value accessors; must only be called when ok().
  const T& value() const& {
    QARM_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    QARM_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    QARM_CHECK(ok());
    return std::move(std::get<T>(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK status to the caller.
#define QARM_RETURN_NOT_OK(expr)        \
  do {                                  \
    ::qarm::Status _st = (expr);        \
    if (!_st.ok()) return _st;          \
  } while (0)

// Assigns the value of a Result expression or propagates its error.
#define QARM_ASSIGN_OR_RETURN(lhs, expr)          \
  auto QARM_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!QARM_CONCAT_(_res_, __LINE__).ok())        \
    return QARM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(QARM_CONCAT_(_res_, __LINE__)).value()

#define QARM_CONCAT_IMPL_(a, b) a##b
#define QARM_CONCAT_(a, b) QARM_CONCAT_IMPL_(a, b)

}  // namespace qarm

#endif  // QARM_COMMON_STATUS_H_
