// Shared hashing for small integer sequences. Every hashed key in QARM —
// super-candidate group keys, itemset-support lookup keys, the interest
// evaluator's wildcard keys — is a short vector of small int32 values
// (attribute indices, item ids, range endpoints). Plain FNV-1a leaves the
// *low* bits of such keys poorly mixed, and unordered_map masks the hash
// with its bucket count, so structurally similar keys pile into a handful
// of buckets. The fix (PR 1): finalize FNV-1a with a splitmix64-style
// 64->64-bit mixer so short small-integer keys spread over the whole
// size_t range. This header is the single definition of that scheme.
#ifndef QARM_COMMON_HASH_H_
#define QARM_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qarm {

// splitmix64: the statistically strong 64->64-bit mixer this header's
// hashes finalize with. Also used directly wherever a cheap deterministic
// stream of well-mixed bits is needed from a structured key (fault-injection
// schedules, retry jitter): SplitMix64(seed ^ f(key)) is stateless and
// identical across platforms and thread schedules.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over 32-bit words, finalized with splitmix64's mixer.
inline uint64_t HashInt32Words(const int32_t* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint32_t>(data[i]);
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Drop-in hasher for unordered containers keyed by std::vector<int32_t>.
struct Int32VectorHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    return static_cast<size_t>(HashInt32Words(v.data(), v.size()));
  }
};

}  // namespace qarm

#endif  // QARM_COMMON_HASH_H_
