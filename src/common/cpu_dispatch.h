// Runtime CPU dispatch for the SIMD counting kernels. The scan and reduce
// hot paths come in up to three implementations — scalar (the original
// row-at-a-time code, kept as the bit-identical oracle), SSE4.2, and AVX2 —
// and the one that runs is chosen once per process from cpuid, overridable
// with the QARM_FORCE_ISA environment variable (scalar|sse42|avx2) for A/B
// measurement and for running the determinism suite against every path.
//
// Determinism contract: every ISA produces byte-identical mined rules. The
// kernels only ever compute integer comparisons, integer sums, and
// popcounts, all of which are exact, so this holds structurally; the ISA
// determinism tests enforce it end to end.
#ifndef QARM_COMMON_CPU_DISPATCH_H_
#define QARM_COMMON_CPU_DISPATCH_H_

#include <string_view>

namespace qarm {

// Instruction sets the counting kernels are specialized for, in strictly
// increasing capability order (a CPU supporting a level supports all lower
// ones, which makes clamping a forced level well defined).
enum class SimdIsa : int {
  kScalar = 0,
  kSse42 = 1,
  kAvx2 = 2,
};

// Display name: "scalar", "sse42", "avx2".
const char* IsaName(SimdIsa isa);

// Parses an ISA name (the QARM_FORCE_ISA grammar). Returns false on an
// unrecognized name.
bool ParseIsaName(std::string_view name, SimdIsa* isa);

// Best ISA this CPU supports, detected once via cpuid (always kScalar on
// non-x86 builds). Never affected by overrides.
SimdIsa DetectCpuIsa();

// The ISA the kernels dispatch to: DetectCpuIsa(), unless QARM_FORCE_ISA or
// a test override lowers it. A forced level above what the CPU supports is
// clamped down (with a warning) rather than crashing on an illegal
// instruction. Cheap enough for per-pass calls (one atomic load after
// initialization).
SimdIsa ActiveIsa();

// Test-only override of ActiveIsa(), taking precedence over QARM_FORCE_ISA.
// Clamped to DetectCpuIsa() like the environment override. Not thread-safe
// against concurrent passes; call between mining runs only.
void SetIsaForTest(SimdIsa isa);

// Removes the test override; ActiveIsa() falls back to env/detection.
void ClearIsaForTest();

}  // namespace qarm

#endif  // QARM_COMMON_CPU_DISPATCH_H_
