// Wall-clock stopwatch used by the scale-up benchmarks.
#ifndef QARM_COMMON_TIMER_H_
#define QARM_COMMON_TIMER_H_

#include <chrono>

namespace qarm {

// Starts timing at construction; ElapsedSeconds() reads without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qarm

#endif  // QARM_COMMON_TIMER_H_
