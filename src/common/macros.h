// Core invariant-checking macros. QARM uses Status/Result for recoverable
// errors (see common/status.h) and these macros for programmer errors:
// a failed check aborts the process with a diagnostic.
#ifndef QARM_COMMON_MACROS_H_
#define QARM_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `cond` is false. Enabled in all build types:
// mining results silently corrupted by an unchecked invariant are worse than
// the cost of a branch.
#define QARM_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "QARM_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Binary comparison checks that print both operand expressions.
#define QARM_CHECK_OP(a, op, b)                                               \
  do {                                                                        \
    if (!((a)op(b))) {                                                        \
      std::fprintf(stderr, "QARM_CHECK failed: %s %s %s at %s:%d\n", #a, #op, \
                   #b, __FILE__, __LINE__);                                   \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define QARM_CHECK_EQ(a, b) QARM_CHECK_OP(a, ==, b)
#define QARM_CHECK_NE(a, b) QARM_CHECK_OP(a, !=, b)
#define QARM_CHECK_LT(a, b) QARM_CHECK_OP(a, <, b)
#define QARM_CHECK_LE(a, b) QARM_CHECK_OP(a, <=, b)
#define QARM_CHECK_GT(a, b) QARM_CHECK_OP(a, >, b)
#define QARM_CHECK_GE(a, b) QARM_CHECK_OP(a, >=, b)

// Debug-only check; compiles away in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define QARM_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define QARM_DCHECK(cond) QARM_CHECK(cond)
#endif

#endif  // QARM_COMMON_MACROS_H_
