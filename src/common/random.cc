#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace qarm {

namespace {
constexpr uint64_t kPcgMultiplier = 6364136223846793005ULL;
constexpr uint64_t kPcgIncrement = 1442695040888963407ULL;
}  // namespace

Rng::Rng(uint64_t seed) : state_(seed + kPcgIncrement) { NextU32(); }

uint32_t Rng::NextU32() {
  uint64_t old = state_;
  state_ = old * kPcgMultiplier + kPcgIncrement;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

uint64_t Rng::NextU64() {
  return (static_cast<uint64_t>(NextU32()) << 32) | NextU32();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QARM_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

ZipfDistribution::ZipfDistribution(size_t n, double theta) {
  QARM_CHECK_GT(n, 0u);
  QARM_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace qarm
