// Deterministic pseudo-random generation for data synthesis and tests.
// A small PCG-style engine plus the distributions the data generators need
// (uniform, normal, log-normal, Zipf). All draws are reproducible from the
// seed, independent of the standard library implementation.
#ifndef QARM_COMMON_RANDOM_H_
#define QARM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qarm {

// PCG-XSH-RR 64/32 pseudo-random engine. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  // Uniform 32-bit draw.
  uint32_t NextU32();

  // Uniform 64-bit draw.
  uint64_t NextU64();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Standard normal draw (Box-Muller).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Zipf-distributed integers over {0, ..., n-1} with exponent `theta`
// (theta = 0 is uniform; larger theta is more skewed). Draws in O(log n)
// via binary search over the precomputed CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double theta);

  // Draws one Zipf value in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace qarm

#endif  // QARM_COMMON_RANDOM_H_
