// Minimal leveled logging to stderr. Log lines carry a level tag and are
// flushed immediately so benchmark/test output interleaves predictably.
#ifndef QARM_COMMON_LOGGING_H_
#define QARM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace qarm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qarm

#define QARM_LOG(level)                                               \
  ::qarm::internal::LogMessage(::qarm::LogLevel::k##level, __FILE__, \
                               __LINE__)

#endif  // QARM_COMMON_LOGGING_H_
