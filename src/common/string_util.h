// Small string helpers used by CSV I/O and rule formatting.
#ifndef QARM_COMMON_STRING_UTIL_H_
#define QARM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace qarm {

// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delim);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Formats a double with up to `precision` significant decimals, trimming
// trailing zeros ("2.50" -> "2.5", "3.00" -> "3").
std::string FormatDouble(double value, int precision = 6);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Strict numeric parsing for untrusted text (CLI flags, config fields).
// Unlike bare strtod/strtoull these reject empty input, trailing garbage,
// out-of-range magnitudes, and non-finite results ("nan", "inf"), and never
// silently yield a default. Leading/trailing ASCII whitespace is allowed.
Result<double> ParseDouble(std::string_view text);
Result<uint64_t> ParseUint64(std::string_view text);

}  // namespace qarm

#endif  // QARM_COMMON_STRING_UTIL_H_
