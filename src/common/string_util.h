// Small string helpers used by CSV I/O and rule formatting.
#ifndef QARM_COMMON_STRING_UTIL_H_
#define QARM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace qarm {

// Splits `input` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delim);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Formats a double with up to `precision` significant decimals, trimming
// trailing zeros ("2.50" -> "2.5", "3.00" -> "3").
std::string FormatDouble(double value, int precision = 6);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace qarm

#endif  // QARM_COMMON_STRING_UTIL_H_
