// The Figure 6 "decoy" scenario: why the interest measure must examine
// specializations, not just generalizations.
//
//   $ ./interest_decoy [num_records]
//
// Generates data where the joint support of (x=v, y=yes) is flat at 1%
// except a spike of 11% at x=5, mines rules with and without the interest
// measure, and shows that only the spike survives.
#include <cstdio>
#include <cstdlib>

#include "core/miner.h"
#include "core/rules.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;

  size_t num_records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  Table data = MakeDecoyTable(num_records, /*seed=*/7);

  MinerOptions options;
  options.minsup = 0.02;
  options.minconf = 0.0;  // the paper allows dropping minconf with interest
  // Uncapped range combination: on a 10-value domain the wide ancestor
  // ranges must exist for the interest comparison (see bench_fig6_decoy).
  options.max_support = 1.0;
  options.num_intervals_override = 0;  // x has only 10 values: no partition
  options.partial_completeness = 2.0;
  options.interest_level = 1.5;
  options.interest_item_prune = false;  // keep decoy ranges in play

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> result = miner.Mine(data);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  size_t interesting = 0, boring = 0;
  std::printf("Rules concluding <y: yes>:\n");
  for (const QuantRule& rule : result->rules) {
    // Focus on x-range => y=yes rules for the demonstration.
    if (rule.consequent.size() != 1 || rule.consequent[0].attr != 1) continue;
    if (result->mapped.attribute(1).DecodeRange(
            rule.consequent[0].lo, rule.consequent[0].hi) != "yes") {
      continue;
    }
    if (rule.interesting) {
      ++interesting;
      std::printf("  [INTERESTING] %s\n",
                  RuleToString(rule, result->mapped).c_str());
    } else {
      ++boring;
      if (boring <= 10) {
        std::printf("  [pruned]      %s\n",
                    RuleToString(rule, result->mapped).c_str());
      }
    }
  }
  std::printf(
      "\n%zu interesting, %zu pruned. The 'Decoy' ranges like <x: 3..5> beat\n"
      "their raw expectation but fail the specialization-difference test\n"
      "(subtracting <x: 5> leaves a boring remainder), so only the spike\n"
      "survives.\n",
      interesting, boring);
  return 0;
}
