// Domain example: mining a financial-services customer table (the stand-in
// for the paper's Section 6 dataset) for marketing insights.
//
//   $ ./census_marketing [num_records] [seed]
//
// Shows the difference the interest measure makes: all rules vs the
// interesting ones, plus run statistics (passes, counting engines used,
// achieved partial completeness).
#include <cstdio>
#include <cstdlib>

#include "core/miner.h"
#include "core/rules.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;

  size_t num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("Generating %zu customer records (seed %llu)...\n", num_records,
              static_cast<unsigned long long>(seed));
  Table data = MakeFinancialDataset(num_records, seed);
  std::printf("%s\n", data.Head(5).ToString().c_str());

  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.50;
  options.max_support = 0.40;
  options.partial_completeness = 2.5;
  options.interest_level = 1.5;

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> result = miner.Mine(data);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const MiningStats& stats = result->stats;
  std::printf("Run summary:\n");
  std::printf("  frequent items:               %zu (+%zu pruned by Lemma 5)\n",
              stats.num_frequent_items, stats.items_pruned_by_interest);
  std::printf("  achieved partial completeness: %.2f (requested %.2f)\n",
              stats.achieved_partial_completeness,
              options.partial_completeness);
  for (const PassStats& pass : stats.passes) {
    std::printf(
        "  pass %zu: %zu candidates -> %zu frequent "
        "(%zu super-candidates: %zu array / %zu tree / %zu direct) %.0f ms\n",
        pass.k, pass.num_candidates, pass.num_frequent,
        pass.counting.num_super_candidates, pass.counting.num_array_counters,
        pass.counting.num_tree_counters, pass.counting.num_direct,
        pass.seconds * 1e3);
  }
  std::printf("  rules: %zu total, %zu interesting\n\n", stats.num_rules,
              stats.num_interesting_rules);

  std::printf("Interesting rules (interest level %.1f):\n",
              options.interest_level);
  size_t shown = 0;
  for (const QuantRule& rule : result->rules) {
    if (!rule.interesting) continue;
    std::printf("  %s\n", RuleToString(rule, result->mapped).c_str());
    if (++shown >= 25) {
      std::printf("  ... (%zu more)\n", stats.num_interesting_rules - shown);
      break;
    }
  }
  return 0;
}
