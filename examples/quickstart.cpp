// Quickstart: mine quantitative association rules from the People table of
// the paper's Figures 1 and 3.
//
//   $ ./quickstart
//
// Walks the five-step decomposition end to end and prints every frequent
// itemset and rule, reproducing the paper's worked example.
#include <cstdio>

#include "core/miner.h"
#include "core/rules.h"
#include "table/datagen.h"

int main() {
  using namespace qarm;

  Table people = MakePeopleTable();
  std::printf("Input table (Figure 1):\n%s\n", people.ToString().c_str());

  MinerOptions options;
  options.minsup = 0.40;   // 40%% = 2 of 5 records
  options.minconf = 0.50;  // 50%%
  options.max_support = 1.0;
  options.num_intervals_override = 4;  // Age -> 4 base intervals (Figure 3b)

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> result = miner.Mine(people);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Frequent itemsets (minimum support %.0f%%):\n",
              options.minsup * 100);
  for (const FrequentRangeItemset& f : result->frequent_itemsets) {
    std::printf("  %-45s support %.0f%% (%llu records)\n",
                ItemsetToString(f.items, result->mapped).c_str(),
                f.support * 100,
                static_cast<unsigned long long>(f.count));
  }

  std::printf("\nRules (minimum confidence %.0f%%):\n",
              options.minconf * 100);
  for (const QuantRule& rule : result->rules) {
    std::printf("  %s\n", RuleToString(rule, result->mapped).c_str());
  }

  std::printf("\nStats: %zu frequent items, %zu rules, %.1f ms total\n",
              result->stats.num_frequent_items, result->stats.num_rules,
              result->stats.total_seconds * 1e3);
  return 0;
}
