// Taxonomy example (the Section 1.1 / [SA95] extension): mining a retail
// table where a product taxonomy lets categorical values combine.
//
//   $ ./retail_taxonomy [num_records]
//
// Individual products are too rare to meet minimum support, but their
// taxonomy groups are not — rules like <product: hot> => <spend: 8..25>
// surface only with the taxonomy attached.
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/taxonomy.h"
#include "table/table.h"

int main(int argc, char** argv) {
  using namespace qarm;

  size_t num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  Taxonomy products = Taxonomy::Make({{"hot", "beverages"},
                                      {"cold", "beverages"},
                                      {"espresso", "hot"},
                                      {"latte", "hot"},
                                      {"tea", "hot"},
                                      {"soda", "cold"},
                                      {"juice", "cold"},
                                      {"water", "cold"},
                                      {"chips", "snacks"},
                                      {"cookies", "snacks"}})
                          .value();

  Schema schema =
      Schema::Make({{"product", AttributeKind::kCategorical,
                     ValueType::kString},
                    {"age", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"spend", AttributeKind::kQuantitative,
                     ValueType::kInt64}})
          .value();
  Table table(schema);
  Rng rng(7);
  static const char* kHot[] = {"espresso", "latte", "tea"};
  static const char* kCold[] = {"soda", "juice", "water"};
  static const char* kSnack[] = {"chips", "cookies"};
  for (size_t i = 0; i < num_records; ++i) {
    double u = rng.UniformDouble();
    std::string product;
    int64_t age, spend;
    if (u < 0.25) {
      // Hot-beverage buyers: older, spend more.
      product = kHot[rng.UniformInt(0, 2)];
      age = rng.UniformInt(30, 65);
      spend = rng.UniformInt(8, 25);
    } else if (u < 0.65) {
      product = kCold[rng.UniformInt(0, 2)];
      age = rng.UniformInt(16, 45);
      spend = rng.UniformInt(2, 9);
    } else {
      product = kSnack[rng.UniformInt(0, 1)];
      age = rng.UniformInt(16, 65);
      spend = rng.UniformInt(1, 6);
    }
    table.AppendRowUnchecked({Value(std::move(product)), Value(age),
                              Value(spend)});
  }

  MinerOptions options;
  options.minsup = 0.15;  // each product alone is ~8-13%: below threshold
  options.minconf = 0.60;
  options.max_support = 0.50;
  options.partial_completeness = 2.0;
  options.interest_level = 1.2;
  options.taxonomies.emplace_back("product", products);

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> result = miner.Mine(table);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "Retail table: %zu records; every individual product is below the\n"
      "%.0f%% support threshold, but taxonomy groups are not.\n\n",
      num_records, options.minsup * 100);
  std::printf("Interesting rules involving the product taxonomy:\n");
  size_t shown = 0;
  for (const QuantRule& rule : result->rules) {
    if (!rule.interesting) continue;
    bool involves_product = false;
    for (const RangeItem& item : rule.antecedent) {
      if (item.attr == 0) involves_product = true;
    }
    for (const RangeItem& item : rule.consequent) {
      if (item.attr == 0) involves_product = true;
    }
    if (!involves_product) continue;
    std::printf("  %s\n", RuleToString(rule, result->mapped).c_str());
    if (++shown >= 20) break;
  }
  std::printf("\n(%zu rules total, %zu interesting)\n",
              result->stats.num_rules, result->stats.num_interesting_rules);
  return 0;
}
