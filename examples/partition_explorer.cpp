// Explores the partial-completeness machinery of Section 3: how the desired
// level K sets the number of base intervals (Equation 2), what level the
// realized equi-depth partitioning achieves (Equation 1), and how the
// frequent-item count and information loss trade off.
//
//   $ ./partition_explorer [num_records]
#include <cstdio>
#include <cstdlib>

#include "core/frequent_items.h"
#include "core/miner.h"
#include "partition/partial_completeness.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;

  size_t num_records = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  Table data = MakeFinancialDataset(num_records, /*seed=*/1);
  const double minsup = 0.20;
  const size_t n_quant = data.schema().num_quantitative();

  std::printf(
      "Partial completeness exploration (%zu records, minsup %.0f%%, "
      "%zu quantitative attributes)\n\n",
      num_records, minsup * 100, n_quant);
  std::printf("%-6s %-10s %-12s %-16s %-14s\n", "K", "intervals",
              "freq items", "achieved K", "mining ms");

  for (double k : {1.5, 2.0, 2.5, 3.0, 4.0, 5.0}) {
    size_t intervals = IntervalsForPartialCompleteness(k, n_quant, minsup);

    MinerOptions options;
    options.minsup = minsup;
    options.minconf = 0.5;
    options.max_support = 0.4;
    options.partial_completeness = k;
    QuantitativeRuleMiner miner(options);
    Result<MiningResult> result = miner.Mine(data);
    if (!result.ok()) {
      std::fprintf(stderr, "K=%.1f failed: %s\n", k,
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-6.1f %-10zu %-12zu %-16.2f %-14.0f\n", k, intervals,
                result->stats.num_frequent_items,
                result->stats.achieved_partial_completeness,
                result->stats.total_seconds * 1e3);
  }

  std::printf(
      "\nLower K preserves more information (more, finer intervals) at the\n"
      "cost of more frequent items and a longer run — the Section 3\n"
      "trade-off. Equi-depth partitioning keeps the achieved K at or below\n"
      "the request (Lemma 4), modulo single-value mass points.\n");
  return 0;
}
