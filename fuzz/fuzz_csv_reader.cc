// Fuzz harness for the CSV ingestion path: the first input line is a
// schema spec, the rest is the CSV text parsed against it — so one input
// mutates both the schema and the data it must match. When the table
// parses, it is also pushed through MapTable (the `qarm convert`
// partition/map step), covering the full untrusted CSV -> MappedTable
// pipeline. Property: never crash, abort, or OOM; all defects come back
// as Status.
#include <cstddef>
#include <cstdint>
#include <string>

#include "partition/mapper.h"
#include "table/csv.h"
#include "table/schema.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  size_t newline = input.find('\n');
  if (newline == std::string::npos) return 0;

  auto schema = qarm::Schema::Parse(input.substr(0, newline));
  if (!schema.ok()) return 0;
  auto table = qarm::ReadCsvString(input.substr(newline + 1), *schema);
  if (!table.ok()) return 0;

  qarm::MapOptions options;
  options.minsup = 0.25;
  options.partial_completeness = 1.5;
  auto mapped = qarm::MapTable(*table, options);
  if (mapped.ok()) (void)mapped->num_rows();
  return 0;
}
