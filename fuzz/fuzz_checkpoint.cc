// Fuzz harness for the checkpoint parser: the input bytes go straight to
// ParseCheckpoint, the same path the miner takes when it decides whether a
// resume is safe. Property: arbitrary bytes — truncated headers, lying
// counts, bit-flipped payloads, synthetic files — never crash, abort, or
// trigger an absurd allocation; every defect surfaces as a Status and the
// miner would restart from scratch.
#include <cstddef>
#include <cstdint>

#include "storage/checkpoint_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto state = qarm::ParseCheckpoint(data, size);
  if (!state.ok()) return 0;
  // A parse that succeeds must hand back internally consistent vectors;
  // walk them so ASan sees any overrun a bad count slipped through.
  uint64_t checksum = state->fingerprint + state->num_rows;
  for (int32_t w : state->catalog.item_words) {
    checksum += static_cast<uint32_t>(w);
  }
  for (uint64_t c : state->catalog.item_counts) checksum += c;
  for (const auto& per_attr : state->catalog.value_counts) {
    for (uint64_t c : per_attr) checksum += c;
  }
  for (const auto& pass : state->passes) {
    for (int32_t id : pass.itemsets) checksum += static_cast<uint32_t>(id);
    for (uint64_t c : pass.counts) checksum += c;
    // v2: the full per-candidate counts an incremental run merges into.
    for (uint32_t c : pass.candidate_counts) checksum += c;
  }
  checksum += state->flags + state->options_fingerprint +
              state->base_num_blocks + state->base_index_crc;
  (void)checksum;
  return 0;
}
