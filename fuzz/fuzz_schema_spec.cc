// Fuzz harness for the schema-spec parser (the --schema=SPEC string).
// Property: Schema::Parse never crashes, aborts, or leaks on arbitrary
// bytes — it either returns a schema or an InvalidArgument status.
#include <cstddef>
#include <cstdint>
#include <string>

#include "table/schema.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string spec(reinterpret_cast<const char*>(data), size);
  auto schema = qarm::Schema::Parse(spec);
  if (schema.ok()) {
    // Exercise the accessors a consumer would touch.
    (void)schema->num_quantitative();
    (void)schema->ToString();
  }
  return 0;
}
