// Standalone corpus-replay driver: a main() that feeds every file (or
// every regular file under every directory) named on the command line to
// LLVMFuzzerTestOneInput, in sorted order for determinism. It makes the
// harnesses runnable without libFuzzer — GCC builds, plain ctest runs, and
// debugging a single crashing input all use this driver; clang builds link
// the real libFuzzer runtime instead (see fuzz/CMakeLists.txt).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

namespace fs = std::filesystem;

int RunOne(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::fprintf(stderr, "Running: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    if (fs::is_directory(argv[i], ec)) {
      for (const fs::directory_entry& entry :
           fs::recursive_directory_iterator(argv[i])) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(argv[i]);
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const fs::path& path : inputs) {
    if (RunOne(path) != 0) return 1;
  }
  std::fprintf(stderr, "Executed %zu inputs without a crash.\n",
               inputs.size());
  return 0;
}
