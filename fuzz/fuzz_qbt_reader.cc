// Fuzz harness for the QBT reader: the input bytes are written to a scratch
// file and opened through QbtFileSource (header, attribute metadata, and
// block-index validation), then every block is read (CRC validation +
// column decode). Property: a truncated, bit-flipped, or wholly synthetic
// file never crashes, aborts, or triggers an absurd allocation — every
// defect surfaces as an IOError/InvalidArgument Status.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "storage/record_source.h"

namespace {

// One scratch path per process: libFuzzer iterations are sequential, and
// replay runs use distinct processes.
std::string ScratchPath() {
  const char* dir = ::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/qarm_fuzz_qbt_" +
         std::to_string(::getpid()) + ".qbt";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = ScratchPath();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return 0;
  if (size > 0 && std::fwrite(data, 1, size, f) != size) {
    std::fclose(f);
    return 0;
  }
  std::fclose(f);

  auto source = qarm::QbtFileSource::Open(path);
  if (!source.ok()) return 0;

  qarm::BlockView view;
  for (size_t b = 0; b < (*source)->num_blocks(); ++b) {
    if (!(*source)->ReadBlock(b, &view).ok()) break;
    // Touch every cell so ASan sees any slice that escapes the mapping.
    uint64_t checksum = 0;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      for (size_t a = 0; a < (*source)->num_attributes(); ++a) {
        checksum += static_cast<uint32_t>(view.value(r, a));
      }
    }
    (void)checksum;
  }
  return 0;
}
