// Fuzz harness for the QRS rule-set reader: the bytes are handed straight
// to ParseRuleSet (header bounds checks in division form, payload-size and
// rule-count validation, CRC verification, per-rule semantic checks).
// Property: a truncated, bit-flipped, or wholly synthetic file never
// crashes, aborts, or triggers an absurd allocation — every defect
// surfaces as an IOError/InvalidArgument Status. On success the parsed set
// is walked so ASan sees any item slice that escaped validation.
#include <cstddef>
#include <cstdint>

#include "storage/rules_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  auto set = qarm::ParseRuleSet(data, size);
  if (!set.ok()) return 0;

  // Touch every decoded field; accepted rules must be in-domain.
  uint64_t checksum = set->num_records + set->attributes.size();
  for (const qarm::StoredRule& rule : set->rules) {
    for (const qarm::StoredItem& item : rule.antecedent) {
      checksum += static_cast<uint32_t>(item.attr + item.lo + item.hi);
    }
    for (const qarm::StoredItem& item : rule.consequent) {
      checksum += static_cast<uint32_t>(item.attr + item.lo + item.hi);
    }
    checksum += rule.count;
  }
  (void)checksum;
  return 0;
}
