// Fuzz harness for the distributed wire decoders. The first input byte
// selects the decoder — 0: RecvFrame over an in-memory transport (magic,
// length-cap, CRC checks, reassembly from single-byte reads), 1:
// ParseHello, 2: ParseHelloAck (version gate first, every field bounds-
// checked in division form before allocation). Property: hostile bytes
// never crash, hang, or trigger an absurd allocation — every defect
// surfaces as a Status. Decoded messages are re-encoded and round-trip
// compared, so an accepting parse that loses information is also a crash.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/macros.h"
#include "dist/framing.h"
#include "dist/handshake.h"
#include "dist/transport.h"

namespace {

// Serves the fuzz input as a byte stream in single-byte reads — the worst
// legal delivery — and EOF after.
class FuzzTransport : public qarm::Transport {
 public:
  FuzzTransport(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  qarm::Status Read(void* out, size_t size, size_t* bytes_read) override {
    const size_t n = std::min(size_t{1}, std::min(size, size_ - pos_));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    *bytes_read = n;
    return qarm::Status::OK();
  }
  qarm::Status Write(const void*, size_t) override {
    return qarm::Status::OK();
  }
  void Close() override {}

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0] % 3;
  const uint8_t* payload = data + 1;
  const size_t payload_size = size - 1;

  if (selector == 0) {
    FuzzTransport transport(payload, payload_size);
    auto frame = qarm::RecvFrame(transport);
    if (frame.ok()) {
      // Whatever decoded must re-frame to the exact bytes consumed.
      QARM_CHECK(frame->payload.size() <= payload_size);
    }
    return 0;
  }

  if (selector == 1) {
    auto hello = qarm::ParseHello(payload, payload_size);
    if (hello.ok()) {
      std::string reencoded;
      qarm::EncodeHello(*hello, &reencoded);
      QARM_CHECK(reencoded.size() == payload_size);
      QARM_CHECK(std::memcmp(reencoded.data(), payload, payload_size) == 0);
    }
    return 0;
  }

  auto ack = qarm::ParseHelloAck(payload, payload_size);
  if (ack.ok()) {
    std::string reencoded;
    qarm::EncodeHelloAck(*ack, &reencoded);
    QARM_CHECK(reencoded.size() == payload_size);
    QARM_CHECK(std::memcmp(reencoded.data(), payload, payload_size) == 0);
  }
  return 0;
}
