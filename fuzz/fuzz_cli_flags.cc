// Fuzz harness for the CLI flag parser: the input is split on newlines
// into an argv vector and run through ParseCliArgs + MinerOptionsFromFlags
// (which calls MinerOptions::Validate). Property: no flag combination —
// non-numeric values, NaN/inf, overflowing integers, inconsistent ranges —
// can crash or abort; everything comes back as Status. The harness never
// touches the filesystem (parsing stops before any file open).
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tools/cli_flags.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  std::vector<std::string> args;
  size_t start = 0;
  while (start <= input.size() && args.size() < 64) {
    size_t end = input.find('\n', start);
    if (end == std::string::npos) end = input.size();
    args.push_back(input.substr(start, end - start));
    start = end + 1;
  }
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());

  auto flags = qarm::ParseCliArgs(static_cast<int>(argv.size()), argv.data(),
                                  /*first_arg=*/0);
  if (!flags.ok()) return 0;
  auto options = qarm::MinerOptionsFromFlags(*flags);
  if (options.ok()) (void)options->Validate();
  return 0;
}
